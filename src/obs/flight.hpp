// Flight recorder: a bounded structured-event ring (DESIGN.md D12).
//
// When a campaign job fails — non-convergence or an oracle hard-fail — the
// end-of-run scalars say *that* it failed; the flight recorder says what
// happened on the way down: protocol phase transitions, merge lifecycle
// steps, churn/wipe/outage events, behavior-window boundaries, and oracle
// violations with their blame classification, all stamped with the engine
// round they happened in.
//
// The ring is bounded (drop-oldest, with a dropped-event counter), so a
// long soak keeps the most recent `cap` events — the interesting ones when
// a job dies. Events are recorded from the engine's serial phases only
// (chained round observer, the job loop, the oracle), so the sequence is
// deterministic at any worker count; the recorder itself is *diagnostic*
// state, not simulation state — it is not checkpointed, never feeds report
// bytes, and a resumed job simply starts its ring fresh.
//
// Export formats: a human-readable text dump, and Chrome trace-event JSON
// (load in chrome://tracing or Perfetto; `chordsim trace` wires it to the
// CLI). Timestamps are engine rounds interpreted as microseconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace chs::obs {

enum class FlightKind : std::uint8_t {
  kPhase = 0,       // a = host id, note = "cbt->chord" style transition
  kMergeStage = 1,  // a = host id, note = "none->proposed" style transition
  kTimelineEvent = 2,  // a = count/domain, note = event kind name
  kWipe = 3,           // a = host id (state wipe / rack power-cycle)
  kByzOpen = 4,        // a = window index, b = end round, note = kind
  kByzClose = 5,       // a = window index, note = kind
  kViolationContained = 6,  // a = focus host, note = violation text
  kViolationReal = 7,       // a = focus host, note = violation text
  kJobStage = 8,            // note = "timeline-begin" / "finished" / ...
};

const char* flight_kind_name(FlightKind k);

struct FlightEvent {
  std::uint64_t round = 0;  // engine round
  FlightKind kind = FlightKind::kJobStage;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string note;

  bool operator==(const FlightEvent&) const = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t cap = 4096);

  void record(std::uint64_t round, FlightKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string note = {});

  /// Retained events, oldest first.
  std::vector<FlightEvent> events() const;
  /// Events ever recorded (retained + dropped).
  std::uint64_t total() const { return total_; }
  /// Events evicted by the ring bound.
  std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size_);
  }
  std::size_t capacity() const { return ring_.size(); }

  /// Chrome trace-event JSON ({"traceEvents": [...]}): byzantine windows
  /// become B/E duration pairs on a per-window track, everything else
  /// instant events on a per-host (or global) track.
  std::string to_chrome_trace() const;

  /// Human-readable dump, one event per line, oldest first.
  std::string to_text() const;

 private:
  std::vector<FlightEvent> ring_;  // fixed capacity, circular
  std::size_t next_ = 0;           // slot the next event lands in
  std::size_t size_ = 0;           // events currently retained
  std::uint64_t total_ = 0;
};

}  // namespace chs::obs
