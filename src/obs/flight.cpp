#include "obs/flight.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace chs::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kPhase: return "phase";
    case FlightKind::kMergeStage: return "merge";
    case FlightKind::kTimelineEvent: return "event";
    case FlightKind::kWipe: return "wipe";
    case FlightKind::kByzOpen: return "byz-open";
    case FlightKind::kByzClose: return "byz-close";
    case FlightKind::kViolationContained: return "contained";
    case FlightKind::kViolationReal: return "violation";
    case FlightKind::kJobStage: return "stage";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t cap) : ring_(cap) {
  CHS_CHECK_MSG(cap >= 1, "flight recorder capacity must be >= 1");
}

void FlightRecorder::record(std::uint64_t round, FlightKind kind,
                            std::uint64_t a, std::uint64_t b,
                            std::string note) {
  FlightEvent& slot = ring_[next_];
  slot.round = round;
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  slot.note = std::move(note);
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(size_);
  const std::size_t first = (next_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::to_chrome_trace() const {
  // One trace document per dump. Tracks (tid): 0 = job/timeline events,
  // 1 = oracle verdicts, 2 = byzantine windows, 1000 + host = per-host
  // protocol lifecycle. ts is the engine round as microseconds.
  std::string out = "{\"traceEvents\": [";
  bool first_ev = true;
  for (const FlightEvent& e : events()) {
    if (!first_ev) out += ",";
    first_ev = false;
    out += "\n  {\"name\": \"";
    out += flight_kind_name(e.kind);
    if (!e.note.empty()) {
      out += " ";
      out += json_escape(e.note);
    }
    out += "\", \"cat\": \"";
    out += flight_kind_name(e.kind);
    out += "\", \"ts\": " + fmt_u64(e.round) + ", \"pid\": 0, \"tid\": ";
    switch (e.kind) {
      case FlightKind::kPhase:
      case FlightKind::kMergeStage:
      case FlightKind::kWipe:
        out += fmt_u64(1000 + e.a);
        break;
      case FlightKind::kViolationContained:
      case FlightKind::kViolationReal:
        out += "1";
        break;
      case FlightKind::kByzOpen:
      case FlightKind::kByzClose:
        out += "2";
        break;
      default:
        out += "0";
        break;
    }
    if (e.kind == FlightKind::kByzOpen) {
      out += ", \"ph\": \"B\"";
    } else if (e.kind == FlightKind::kByzClose) {
      out += ", \"ph\": \"E\"";
    } else {
      out += ", \"ph\": \"i\", \"s\": \"g\"";
    }
    out += ", \"args\": {\"a\": " + fmt_u64(e.a) + ", \"b\": " +
           fmt_u64(e.b) + "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string FlightRecorder::to_text() const {
  std::string out;
  char line[64];
  for (const FlightEvent& e : events()) {
    std::snprintf(line, sizeof(line), "%10llu  %-10s",
                  static_cast<unsigned long long>(e.round),
                  flight_kind_name(e.kind));
    out += line;
    out += " a=" + fmt_u64(e.a) + " b=" + fmt_u64(e.b);
    if (!e.note.empty()) {
      out += "  ";
      out += e.note;
    }
    out += "\n";
  }
  if (dropped() > 0) {
    out += "(" + fmt_u64(dropped()) + " older events dropped by the ring)\n";
  }
  return out;
}

}  // namespace chs::obs
