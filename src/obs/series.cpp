#include "obs/series.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace chs::obs {
namespace {

// Element-wise b[i] - a[i] accumulated into out (sizes match or are empty;
// the cursor's histogram never shrinks).
void accumulate_hist_delta(std::vector<std::uint64_t>& out,
                           const std::vector<std::uint64_t>& prev,
                           const std::vector<std::uint64_t>& cur) {
  if (cur.empty()) return;
  if (out.size() < cur.size()) out.resize(cur.size(), 0);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint64_t base = i < prev.size() ? prev[i] : 0;
    out[i] += cur[i] - base;
  }
}

}  // namespace

std::size_t lat_bucket(std::uint64_t rounds) {
  std::size_t b = 0;
  while (b + 1 < kLatBuckets && rounds >= (std::uint64_t{2} << b)) ++b;
  return b;
}

std::uint64_t lat_quantile(const std::vector<std::uint64_t>& hist,
                           std::uint64_t q_myriad) {
  std::uint64_t total = 0;
  for (std::uint64_t c : hist) total += c;
  if (total == 0) return 0;
  // Smallest bucket whose cumulative count covers the quantile (ceiling
  // division keeps this exact in integers).
  const std::uint64_t need = (total * q_myriad + 9999) / 10000;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    cum += hist[i];
    if (cum >= need) return (std::uint64_t{2} << i) - 1;
  }
  return (std::uint64_t{2} << (hist.size() - 1)) - 1;
}

SeriesRecorder::SeriesRecorder(std::uint64_t stride, std::uint64_t cap)
    : stride_(stride), cap_(cap), eff_stride_(stride) {
  CHS_CHECK_MSG(stride >= 1, "series stride must be >= 1");
  CHS_CHECK_MSG(cap >= 2 && (cap & (cap - 1)) == 0,
                "series capacity must be a power of two >= 2");
  samples_.reserve(static_cast<std::size_t>(cap));
}

void SeriesRecorder::on_round(std::uint64_t t, const SeriesCursor& c,
                              std::uint64_t windows_open,
                              std::uint64_t inflight) {
  bucket_.active += c.active - prev_.active;
  bucket_.actions += c.actions - prev_.actions;
  bucket_.messages += c.messages - prev_.messages;
  bucket_.dropped += c.dropped - prev_.dropped;
  bucket_.snapshots += c.snapshots - prev_.snapshots;
  bucket_.contained += c.contained - prev_.contained;
  bucket_.violations += c.violations - prev_.violations;
  bucket_.windows_open = std::max(bucket_.windows_open, windows_open);
  bucket_.ops_issued += c.ops_issued - prev_.ops_issued;
  bucket_.ops_completed += c.ops_completed - prev_.ops_completed;
  bucket_.ops_timeout += c.ops_timeout - prev_.ops_timeout;
  bucket_.ops_retried += c.ops_retried - prev_.ops_retried;
  bucket_.kv_messages += c.kv_messages - prev_.kv_messages;
  bucket_.inflight = std::max(bucket_.inflight, inflight);
  accumulate_hist_delta(bucket_.lat_hist, prev_.lat_hist, c.lat_hist);
  prev_ = c;
  ++bucket_rounds_;
  if (bucket_rounds_ >= eff_stride_) close_bucket(t);
}

void SeriesRecorder::flush(std::uint64_t t) {
  if (bucket_rounds_ > 0) close_bucket(t);
}

void SeriesRecorder::close_bucket(std::uint64_t t) {
  bucket_.round = t;
  samples_.push_back(bucket_);
  bucket_ = SeriesSample{};
  bucket_rounds_ = 0;
  if (samples_.size() < cap_) return;
  // Ring full: merge adjacent pairs (counters sum, gauges max) and double
  // the effective stride. cap_ is a power of two, so the pairing is exact.
  std::vector<SeriesSample> merged;
  merged.reserve(samples_.size() / 2);
  for (std::size_t i = 0; i + 1 < samples_.size(); i += 2) {
    const SeriesSample& a = samples_[i];
    const SeriesSample& b = samples_[i + 1];
    SeriesSample m;
    m.round = b.round;
    m.active = a.active + b.active;
    m.actions = a.actions + b.actions;
    m.messages = a.messages + b.messages;
    m.dropped = a.dropped + b.dropped;
    m.snapshots = a.snapshots + b.snapshots;
    m.contained = a.contained + b.contained;
    m.violations = a.violations + b.violations;
    m.windows_open = std::max(a.windows_open, b.windows_open);
    m.ops_issued = a.ops_issued + b.ops_issued;
    m.ops_completed = a.ops_completed + b.ops_completed;
    m.ops_timeout = a.ops_timeout + b.ops_timeout;
    m.ops_retried = a.ops_retried + b.ops_retried;
    m.kv_messages = a.kv_messages + b.kv_messages;
    m.inflight = std::max(a.inflight, b.inflight);
    m.lat_hist = a.lat_hist;
    accumulate_hist_delta(m.lat_hist, {}, b.lat_hist);
    merged.push_back(m);
  }
  samples_ = std::move(merged);
  eff_stride_ *= 2;
}

}  // namespace chs::obs
