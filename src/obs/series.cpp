#include "obs/series.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace chs::obs {

SeriesRecorder::SeriesRecorder(std::uint64_t stride, std::uint64_t cap)
    : stride_(stride), cap_(cap), eff_stride_(stride) {
  CHS_CHECK_MSG(stride >= 1, "series stride must be >= 1");
  CHS_CHECK_MSG(cap >= 2 && (cap & (cap - 1)) == 0,
                "series capacity must be a power of two >= 2");
  samples_.reserve(static_cast<std::size_t>(cap));
}

void SeriesRecorder::on_round(std::uint64_t t, const SeriesCursor& c,
                              std::uint64_t windows_open) {
  bucket_.active += c.active - prev_.active;
  bucket_.actions += c.actions - prev_.actions;
  bucket_.messages += c.messages - prev_.messages;
  bucket_.dropped += c.dropped - prev_.dropped;
  bucket_.snapshots += c.snapshots - prev_.snapshots;
  bucket_.contained += c.contained - prev_.contained;
  bucket_.violations += c.violations - prev_.violations;
  bucket_.windows_open = std::max(bucket_.windows_open, windows_open);
  prev_ = c;
  ++bucket_rounds_;
  if (bucket_rounds_ >= eff_stride_) close_bucket(t);
}

void SeriesRecorder::flush(std::uint64_t t) {
  if (bucket_rounds_ > 0) close_bucket(t);
}

void SeriesRecorder::close_bucket(std::uint64_t t) {
  bucket_.round = t;
  samples_.push_back(bucket_);
  bucket_ = SeriesSample{};
  bucket_rounds_ = 0;
  if (samples_.size() < cap_) return;
  // Ring full: merge adjacent pairs (counters sum, gauges max) and double
  // the effective stride. cap_ is a power of two, so the pairing is exact.
  std::vector<SeriesSample> merged;
  merged.reserve(samples_.size() / 2);
  for (std::size_t i = 0; i + 1 < samples_.size(); i += 2) {
    const SeriesSample& a = samples_[i];
    const SeriesSample& b = samples_[i + 1];
    SeriesSample m;
    m.round = b.round;
    m.active = a.active + b.active;
    m.actions = a.actions + b.actions;
    m.messages = a.messages + b.messages;
    m.dropped = a.dropped + b.dropped;
    m.snapshots = a.snapshots + b.snapshots;
    m.contained = a.contained + b.contained;
    m.violations = a.violations + b.violations;
    m.windows_open = std::max(a.windows_open, b.windows_open);
    merged.push_back(m);
  }
  samples_ = std::move(merged);
  eff_stride_ *= 2;
}

}  // namespace chs::obs
