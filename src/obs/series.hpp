// Deterministic round-indexed time-series recorder (DESIGN.md D12).
//
// Campaign reports reduce a job to end-of-run scalars; the series recorder
// keeps the shape of the run — what the network looked like *during* the
// heal, the attack window, the rack funeral — as a bounded sequence of
// per-window samples over the adversarial timeline.
//
// Determinism contract: every input is a deterministic counter (engine
// RunMetrics cumulatives, oracle containment counters, the scenario's
// window schedule), sampling is indexed by timeline round, and the
// downsampling policy is a pure function of the sample count — so the
// recorded series is byte-identical at any --jobs/--workers value and
// across checkpoint/resume (the recorder's complete state round-trips via
// persist_fields; see the OBSR section in campaign/runner.cpp). Wall-clock
// data is banned here by construction — that belongs to sim/profile.hpp.
//
// Bounded memory: samples land in a ring of capacity `cap` (a power of
// two). When the ring fills, adjacent samples are merged pairwise (counters
// sum, gauges max) and the effective stride doubles — a million-round soak
// still costs at most `cap` samples, with resolution degrading gracefully
// from the front of the run backwards.
#pragma once

#include <cstdint>
#include <vector>

namespace chs::obs {

/// One sampled window of `stride` timeline rounds ending at `round`.
/// Counter fields are deltas summed over the window; `windows_open` is a
/// gauge (max over the window) so downsampling never invents activity.
struct SeriesSample {
  std::uint64_t round = 0;      // timeline round the window ends at
  std::uint64_t active = 0;     // host-steps: nodes stepped, summed
  std::uint64_t actions = 0;    // protocol actions (sends/holds/edges)
  std::uint64_t messages = 0;   // network messages sent
  std::uint64_t dropped = 0;    // deliveries suppressed (loss/partition)
  std::uint64_t snapshots = 0;  // dirty snapshots published
  std::uint64_t contained = 0;  // oracle violations blamed on the adversary
  std::uint64_t violations = 0;  // real (unattributed) oracle violations
  std::uint64_t windows_open = 0;  // byzantine windows open (gauge)

  // Serving-layer counters (DESIGN.md D13), populated only when a workload
  // is armed; zero/empty otherwise so non-workload reports are unchanged.
  std::uint64_t ops_issued = 0;     // client ops injected
  std::uint64_t ops_completed = 0;  // ops answered (ack / reply, either way)
  std::uint64_t ops_timeout = 0;    // ops that exhausted every retry
  std::uint64_t ops_retried = 0;    // replica-failover re-issues
  std::uint64_t kv_messages = 0;    // data-plane network messages
  std::uint64_t inflight = 0;       // concurrent in-flight ops (gauge)
  // Completion-latency histogram: bucket i counts ops that completed in
  // [2^i, 2^(i+1)) rounds (bucket 0 is [0,2), the last bucket is open).
  // Log-bucketed counters sum exactly under pair-merge downsampling, which
  // is what keeps per-window p50/p99 meaningful after stride doubling.
  std::vector<std::uint64_t> lat_hist;

  bool operator==(const SeriesSample&) const = default;

  template <typename A>
  void persist_fields(A& a) {
    a(round);
    a(active);
    a(actions);
    a(messages);
    a(dropped);
    a(snapshots);
    a(contained);
    a(violations);
    a(windows_open);
    a(ops_issued);
    a(ops_completed);
    a(ops_timeout);
    a(ops_retried);
    a(kv_messages);
    a(inflight);
    a(lat_hist);
  }
};

/// Number of log2 latency buckets (latencies above 2^15 rounds saturate).
inline constexpr std::size_t kLatBuckets = 16;

/// Bucket index for a completion latency in rounds.
std::size_t lat_bucket(std::uint64_t rounds);

/// Quantile upper bound from a log2 histogram: the inclusive upper edge
/// (2^(i+1) - 1) of the first bucket where the cumulative count reaches
/// q * total, with q in per-myriad (5000 = p50, 9900 = p99). Returns 0 for
/// an empty histogram.
std::uint64_t lat_quantile(const std::vector<std::uint64_t>& hist,
                           std::uint64_t q_myriad);

/// Cumulative source counters the recorder differentiates. The caller (the
/// campaign job loop) fills one of these per timeline round from engine
/// metrics and probe counters; the recorder turns consecutive readings into
/// per-window deltas.
struct SeriesCursor {
  std::uint64_t active = 0;
  std::uint64_t actions = 0;
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t contained = 0;
  std::uint64_t violations = 0;
  // Serving-layer cumulatives (zero/empty when no workload is armed).
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_timeout = 0;
  std::uint64_t ops_retried = 0;
  std::uint64_t kv_messages = 0;
  std::vector<std::uint64_t> lat_hist;  // cumulative log2 buckets

  template <typename A>
  void persist_fields(A& a) {
    a(active);
    a(actions);
    a(messages);
    a(dropped);
    a(snapshots);
    a(contained);
    a(violations);
    a(ops_issued);
    a(ops_completed);
    a(ops_timeout);
    a(ops_retried);
    a(kv_messages);
    a(lat_hist);
  }
};

class SeriesRecorder {
 public:
  SeriesRecorder() = default;
  /// `stride` timeline rounds per sample (>= 1); `cap` ring capacity, a
  /// power of two >= 2 (campaign::Scenario::validate enforces both).
  SeriesRecorder(std::uint64_t stride, std::uint64_t cap);

  /// Set the delta baselines without recording — call once when the
  /// timeline starts, with the cursor at timeline round 0.
  void prime(const SeriesCursor& c) { prev_ = c; }

  /// Record timeline round `t` (the round that just executed): accumulate
  /// the counter deltas since the previous call into the open window, close
  /// the window when it reaches the effective stride, and downsample when
  /// the ring fills. `inflight` is the concurrent-op gauge (0 when no
  /// workload is armed).
  void on_round(std::uint64_t t, const SeriesCursor& c,
                std::uint64_t windows_open, std::uint64_t inflight = 0);

  /// Close a partially filled final window (job end). Idempotent per
  /// window: a flush with nothing accumulated records nothing.
  void flush(std::uint64_t t);

  const std::vector<SeriesSample>& samples() const { return samples_; }
  /// Rounds per sample after downsampling (>= the configured stride).
  std::uint64_t effective_stride() const { return eff_stride_; }
  std::uint64_t configured_stride() const { return stride_; }
  std::uint64_t capacity() const { return cap_; }

  /// Complete dynamic state (DESIGN.md D9): the ring, the open window, the
  /// delta baselines, and the stride ladder all round-trip, so a resumed
  /// job's series is bit-for-bit the uninterrupted run's.
  template <typename A>
  void persist_fields(A& a) {
    a(stride_);
    a(cap_);
    a(eff_stride_);
    a(bucket_rounds_);
    a(bucket_);
    a(prev_);
    a(samples_);
  }

 private:
  std::uint64_t stride_ = 1;
  std::uint64_t cap_ = 256;
  std::uint64_t eff_stride_ = 1;
  std::uint64_t bucket_rounds_ = 0;  // rounds accumulated in the open window
  SeriesSample bucket_;
  SeriesCursor prev_;
  std::vector<SeriesSample> samples_;

  void close_bucket(std::uint64_t t);
};

}  // namespace chs::obs
