#include "obs/profiler.hpp"

#include <cstdio>

namespace chs::obs {

std::string perf_json(const sim::RoundProfile& p) {
  char buf[64];
  std::string out = "{\"rounds\": ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(p.rounds));
  out += buf;
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(p.total_ns()));
  out += std::string(", \"total_ns\": ") + buf + ", \"phases\": {";
  for (std::size_t i = 0; i < sim::kRoundPhases; ++i) {
    if (i) out += ", ";
    out += std::string("\"") +
           sim::round_phase_name(static_cast<sim::RoundPhase>(i)) + "\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(p.ns[i]));
    out += buf;
  }
  out += "}}";
  return out;
}

std::string perf_text(const sim::RoundProfile& p) {
  const double rounds = p.rounds > 0 ? static_cast<double>(p.rounds) : 1.0;
  const double total =
      p.total_ns() > 0 ? static_cast<double>(p.total_ns()) : 1.0;
  char line[128];
  std::string out;
  std::snprintf(line, sizeof(line), "%-10s %12s %14s %8s\n", "phase",
                "total ms", "per-round us", "share");
  out += line;
  for (std::size_t i = 0; i < sim::kRoundPhases; ++i) {
    const double ns = static_cast<double>(p.ns[i]);
    std::snprintf(line, sizeof(line), "%-10s %12.3f %14.3f %7.1f%%\n",
                  sim::round_phase_name(static_cast<sim::RoundPhase>(i)),
                  ns / 1e6, ns / rounds / 1e3, 100.0 * ns / total);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-10s %12.3f %14.3f  (%llu rounds)\n",
                "total", total / 1e6, total / rounds / 1e3,
                static_cast<unsigned long long>(p.rounds));
  out += line;
  return out;
}

}  // namespace chs::obs
