// Formatting for the wall-clock phase profile (DESIGN.md D12).
//
// sim/profile.hpp owns the accumulator; this is the campaign-facing
// presentation: a JSON fragment for the report's non-deterministic `perf`
// block and a text summary for `chordsim campaign --profile`. Both are
// wall-clock derived and therefore excluded from every golden-diffed
// artifact — the campaign only emits them when profiling was explicitly
// armed, and no CI golden arms it.
#pragma once

#include <string>

#include "sim/profile.hpp"

namespace chs::obs {

/// JSON object fragment, e.g.
/// {"rounds": 12, "total_ns": 34, "phases": {"scan": 1, ...}}.
std::string perf_json(const sim::RoundProfile& p);

/// Aligned text summary table (phase, total ms, per-round µs, share).
std::string perf_text(const sim::RoundProfile& p);

}  // namespace chs::obs
