// Generic target-topology description for the network-scaffolding pattern
// (§6 of the paper).
//
// Algorithm 1 builds ring-finger ("span") edges inductively: wave k creates
// the span-2^k edge of every guest using the span-2^(k-1) edges of wave k−1.
// Any topology whose edge set is CBT ∪ {a subset of span edges} can reuse the
// construction unchanged: the builder runs `num_waves` MakeFinger waves, and
// at the final DONE wave each host prunes span edges the target does not
// `keep`. (The scaffold edges are always kept — "unlike a real scaffold, we
// maintain the scaffold edges after the target network is built".)
//
// Instantiations:
//   chord_target      — the paper's Chord(N): keep all, log N − 1 waves.
//   bichord_target    — full finger table: one extra wave (span N/2).
//   hypercube_target  — keep (i, i+2^k) iff bit k of i is 0 (N must be 2^m).
//   skiplist_target   — keep (i, i+2^k) iff 2^k divides i: a deterministic
//                       skip list over the ring (express lanes thin out
//                       geometrically; guest 0 is the top-lane hub).
//   smallworld_target — ring plus exactly one long-range finger per guest at
//                       a hash-chosen level (Kleinberg-style small world,
//                       derandomized so it stays locally checkable).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "topology/cbt.hpp"
#include "util/bitops.hpp"

namespace chs::topology {

struct TargetSpec {
  std::string name;
  /// Number of MakeFinger waves (= highest span exponent + 1). Must satisfy
  /// num_waves(N) <= ceil(log2 N) so the inductive construction stays valid.
  std::function<std::uint32_t(std::uint64_t n_guests)> num_waves;
  /// Whether the undirected span edge (i, (i + 2^k) mod N) belongs to the
  /// final target topology.
  std::function<bool(GuestId i, std::uint32_t k, std::uint64_t n_guests)> keep;
  /// Optional exact range query: does any guest i in [s0, s1), s1 <= n,
  /// keep its level-k finger? The DONE-time prune asks this for whole
  /// responsible ranges; when unset, the protocol falls back to a bit-k
  /// parity heuristic that is exact for keep predicates depending on i only
  /// through bit k (chord, bichord, hypercube). Targets with finer
  /// predicates (skiplist, smallworld) must provide it.
  std::function<bool(std::uint64_t s0, std::uint64_t s1, std::uint32_t k,
                     std::uint64_t n_guests)>
      any_kept_in;
};

TargetSpec chord_target();
TargetSpec bichord_target();
TargetSpec hypercube_target();
TargetSpec skiplist_target();
/// `salt` varies the hash so different deployments get different long-range
/// wirings; every node must agree on it (it is part of the target, like N).
TargetSpec smallworld_target(std::uint64_t salt = 0);

/// The level of guest i's one long-range finger in smallworld_target(salt):
/// a value in [1, num_waves). Exposed so tests and routing analyses can
/// reason about the wiring without re-deriving the hash.
std::uint32_t smallworld_level(GuestId i, std::uint64_t n_guests,
                               std::uint64_t salt = 0);

/// Final guest edge set for a target: CBT(N) tree edges plus kept span
/// edges. O(N log N); used by legality checkers and tests.
std::vector<std::pair<GuestId, GuestId>> target_guest_edges(const TargetSpec& t,
                                                            std::uint64_t n_guests);

}  // namespace chs::topology
