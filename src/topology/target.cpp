#include "topology/target.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace chs::topology {

TargetSpec chord_target() {
  return TargetSpec{
      .name = "chord",
      .num_waves = [](std::uint64_t n) { return util::chord_num_fingers(n); },
      .keep = [](GuestId, std::uint32_t, std::uint64_t) { return true; },
      .any_kept_in = {},
  };
}

TargetSpec bichord_target() {
  return TargetSpec{
      .name = "bichord",
      .num_waves = [](std::uint64_t n) { return util::ceil_log2(n); },
      .keep = [](GuestId, std::uint32_t, std::uint64_t) { return true; },
      .any_kept_in = {},
  };
}

TargetSpec hypercube_target() {
  return TargetSpec{
      .name = "hypercube",
      .num_waves =
          [](std::uint64_t n) {
            CHS_CHECK_MSG(util::is_pow2(n), "hypercube target needs N = 2^m");
            return util::ceil_log2(n);
          },
      .keep =
          [](GuestId i, std::uint32_t k, std::uint64_t n) {
            CHS_CHECK_MSG(util::is_pow2(n), "hypercube target needs N = 2^m");
            return (i & (std::uint64_t{1} << k)) == 0;
          },
      .any_kept_in = {},
  };
}

TargetSpec skiplist_target() {
  return TargetSpec{
      .name = "skiplist",
      .num_waves = [](std::uint64_t n) { return util::ceil_log2(n); },
      .keep =
          [](GuestId i, std::uint32_t k, std::uint64_t) {
            return (i & ((std::uint64_t{1} << k) - 1)) == 0;
          },
      // [s0, s1) contains a multiple of 2^k iff rounding s0 up to the next
      // multiple stays below s1.
      .any_kept_in =
          [](std::uint64_t s0, std::uint64_t s1, std::uint32_t k,
             std::uint64_t) {
            if (s0 >= s1) return false;
            const std::uint64_t step = std::uint64_t{1} << k;
            const std::uint64_t first = (s0 + step - 1) / step * step;
            return first < s1;
          },
  };
}

namespace {

// SplitMix64 finalizer as a stateless hash: every node computes the same
// value for the same (i, n, salt), which is what keeps the derandomized
// small world locally checkable.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t smallworld_level(GuestId i, std::uint64_t n_guests,
                               std::uint64_t salt) {
  const std::uint32_t waves = util::ceil_log2(n_guests);
  if (waves <= 1) return 0;  // degenerate N <= 2: ring only
  const std::uint64_t h =
      mix64(i * 0x9e3779b97f4a7c15ULL + salt + n_guests * 0x2545f4914f6cdd1dULL);
  return 1 + static_cast<std::uint32_t>(h % (waves - 1));
}

TargetSpec smallworld_target(std::uint64_t salt) {
  return TargetSpec{
      .name = "smallworld",
      .num_waves = [](std::uint64_t n) { return util::ceil_log2(n); },
      .keep =
          [salt](GuestId i, std::uint32_t k, std::uint64_t n) {
            return k == 0 || k == smallworld_level(i, n, salt);
          },
      // Exact early-exit scan: each guest keeps level k with probability
      // about 1/(waves-1), so the expected scan length is O(log N).
      .any_kept_in =
          [salt](std::uint64_t s0, std::uint64_t s1, std::uint32_t k,
                 std::uint64_t n) {
            if (s0 >= s1) return false;
            if (k == 0) return true;
            for (std::uint64_t i = s0; i < s1; ++i) {
              if (k == smallworld_level(i, n, salt)) return true;
            }
            return false;
          },
  };
}

std::vector<std::pair<GuestId, GuestId>> target_guest_edges(const TargetSpec& t,
                                                            std::uint64_t n_guests) {
  const Cbt cbt(n_guests);
  std::vector<std::pair<GuestId, GuestId>> out = cbt.edges();
  for (auto& [a, b] : out) {
    if (a > b) std::swap(a, b);
  }
  const std::uint32_t waves = t.num_waves(n_guests);
  for (GuestId i = 0; i < n_guests; ++i) {
    for (std::uint32_t k = 0; k < waves; ++k) {
      if (!t.keep(i, k, n_guests)) continue;
      const GuestId j = (i + (std::uint64_t{1} << k)) % n_guests;
      if (i == j) continue;
      out.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace chs::topology
