#include "topology/cbt.hpp"

#include <algorithm>

namespace chs::topology {
namespace {
/// Depth of a complete-BST subtree spanning `size` positions.
std::uint32_t subtree_depth(std::uint64_t size) {
  return size == 0 ? 0 : util::floor_log2(size);
}

bool fully_inside(const CbtInterval& iv, GuestId rlo, GuestId rhi) {
  return iv.lo >= rlo && iv.hi <= rhi;
}
bool fully_outside(const CbtInterval& iv, GuestId rlo, GuestId rhi) {
  return iv.hi <= rlo || iv.lo >= rhi;
}
}  // namespace

std::uint32_t Cbt::depth() const { return subtree_depth(n_); }

CbtInterval Cbt::interval_of(GuestId g) const {
  CHS_CHECK_MSG(g < n_, "guest id out of range");
  CbtInterval iv = whole();
  while (iv.mid() != g) {
    iv = g < iv.mid() ? iv.left() : iv.right();
    CHS_DCHECK(!iv.empty());
  }
  return iv;
}

std::uint32_t Cbt::depth_of(GuestId g) const {
  CHS_CHECK_MSG(g < n_, "guest id out of range");
  CbtInterval iv = whole();
  std::uint32_t d = 0;
  while (iv.mid() != g) {
    iv = g < iv.mid() ? iv.left() : iv.right();
    ++d;
  }
  return d;
}

std::optional<GuestId> Cbt::parent(GuestId g) const {
  CHS_CHECK_MSG(g < n_, "guest id out of range");
  CbtInterval iv = whole();
  std::optional<GuestId> par;
  while (iv.mid() != g) {
    par = iv.mid();
    iv = g < iv.mid() ? iv.left() : iv.right();
  }
  return par;
}

std::vector<GuestId> Cbt::children(GuestId g) const {
  const CbtInterval iv = interval_of(g);
  std::vector<GuestId> out;
  if (!iv.left().empty()) out.push_back(iv.left().mid());
  if (!iv.right().empty()) out.push_back(iv.right().mid());
  return out;
}

bool Cbt::is_edge(GuestId a, GuestId b) const {
  if (a == b || a >= n_ || b >= n_) return false;
  const auto pa = parent(a);
  if (pa && *pa == b) return true;
  const auto pb = parent(b);
  return pb && *pb == a;
}

std::vector<std::pair<GuestId, GuestId>> Cbt::edges() const {
  std::vector<std::pair<GuestId, GuestId>> out;
  out.reserve(n_ > 0 ? n_ - 1 : 0);
  for (GuestId g = 0; g < n_; ++g) {
    for (GuestId c : children(g)) out.emplace_back(g, c);
  }
  return out;
}

void Cbt::descend_crossings(CbtInterval iv, GuestId rlo, GuestId rhi,
                            std::vector<CrossingEdge>& out) const {
  if (iv.empty()) return;
  const GuestId m = iv.mid();
  const bool m_in = m >= rlo && m < rhi;
  for (const CbtInterval& civ : {iv.left(), iv.right()}) {
    if (civ.empty()) continue;
    const GuestId cm = civ.mid();
    const bool c_in = cm >= rlo && cm < rhi;
    if (m_in != c_in) {
      out.push_back(CrossingEdge{m, cm, civ, c_in});
    }
    // Crossing edges strictly inside civ require civ to straddle the range
    // border, i.e. be neither fully inside nor fully outside.
    if (!fully_inside(civ, rlo, rhi) && !fully_outside(civ, rlo, rhi)) {
      descend_crossings(civ, rlo, rhi, out);
    }
  }
}

std::vector<Cbt::CrossingEdge> Cbt::crossing_edges(GuestId rlo, GuestId rhi) const {
  std::vector<CrossingEdge> out;
  if (rlo >= rhi) return out;
  descend_crossings(whole(), rlo, rhi, out);
  return out;
}

std::vector<Cbt::Fragment> Cbt::fragments(GuestId rlo, GuestId rhi) const {
  std::vector<Fragment> result;
  if (rlo >= rhi) return result;
  rhi = std::min<GuestId>(rhi, n_);

  // Entry positions: in-range children of crossing edges, plus the tree root
  // if it lies inside the range.
  std::vector<std::pair<GuestId, std::optional<GuestId>>> entries;  // (entry, parent)
  for (const CrossingEdge& e : crossing_edges(rlo, rhi)) {
    if (e.child_inside) entries.emplace_back(e.child_pos, e.parent_pos);
  }
  if (root() >= rlo && root() < rhi) entries.emplace_back(root(), std::nullopt);
  std::sort(entries.begin(), entries.end());

  for (const auto& [entry, parent_pos] : entries) {
    Fragment f;
    f.entry = entry;
    f.entry_depth = depth_of(entry);
    f.parent_pos = parent_pos;
    f.max_internal_rel_depth = 0;

    // Walk the in-range subtree below `entry`; prune to the O(depth) spine of
    // partially-overlapping intervals (fully-in-range subtrees contribute a
    // closed-form depth and contain no crossing edges).
    struct Item {
      CbtInterval iv;
      std::uint32_t rel_depth;  // of iv.mid()
    };
    std::vector<Item> stack{{interval_of(entry), 0}};
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      const GuestId m = it.iv.mid();
      CHS_DCHECK(m >= rlo && m < rhi);
      f.max_internal_rel_depth = std::max(f.max_internal_rel_depth, it.rel_depth);
      for (const CbtInterval& civ : {it.iv.left(), it.iv.right()}) {
        if (civ.empty()) continue;
        const GuestId cm = civ.mid();
        const bool c_in = cm >= rlo && cm < rhi;
        if (!c_in) {
          f.out_edges.push_back(Fragment::OutEdge{m, cm, it.rel_depth});
          continue;
        }
        if (fully_inside(civ, rlo, rhi)) {
          f.max_internal_rel_depth = std::max(
              f.max_internal_rel_depth, it.rel_depth + 1 + subtree_depth(civ.size()));
        } else {
          stack.push_back(Item{civ, it.rel_depth + 1});
        }
      }
    }
    std::sort(f.out_edges.begin(), f.out_edges.end(),
              [](const Fragment::OutEdge& a, const Fragment::OutEdge& b) {
                return a.child_pos < b.child_pos;
              });
    result.push_back(std::move(f));
  }
  return result;
}

}  // namespace chs::topology
