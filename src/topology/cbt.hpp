// Geometry of the Cbt(N) guest network (§3.2).
//
// Cbt(N) is the complete binary search tree over guest identifiers [0, N),
// realized by recursive median split: the subtree spanning the half-open
// interval [lo, hi) is rooted at position m = lo + (hi-lo)/2, with left
// subtree [lo, m) and right subtree [m+1, hi). Every guest id is therefore
// also a tree position, intervals identify subtrees, and all relations
// (parent, children, depth) are computable in O(depth) with no stored state.
//
// The *fragment geometry* functions answer the question a host with
// responsible range R = [rlo, rhi) needs: which tree edges cross the border
// of R (these are exactly the host-level edges the dilation-1 embedding
// requires), and how R decomposes into maximal in-range subtrees
// ("fragments") that a PIF wave traverses. A contiguous id range of a BST is
// crossed by only O(depth) tree edges — the edges on the search paths of its
// two endpoints — so fragment geometry is small even for huge ranges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitops.hpp"
#include "util/check.hpp"

namespace chs::topology {

using GuestId = std::uint64_t;

/// Subtree interval [lo, hi); the subtree root is mid().
struct CbtInterval {
  GuestId lo;
  GuestId hi;

  GuestId mid() const { return lo + (hi - lo) / 2; }
  std::uint64_t size() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
  bool contains(GuestId g) const { return g >= lo && g < hi; }
  CbtInterval left() const { return {lo, mid()}; }
  CbtInterval right() const { return {mid() + 1, hi}; }
  bool operator==(const CbtInterval&) const = default;
};

class Cbt {
 public:
  explicit Cbt(std::uint64_t n_guests) : n_(n_guests) {
    CHS_CHECK_MSG(n_ >= 1, "Cbt needs at least one guest");
  }

  std::uint64_t n() const { return n_; }
  CbtInterval whole() const { return {0, n_}; }
  GuestId root() const { return whole().mid(); }

  /// Max depth of any position (root is depth 0).
  std::uint32_t depth() const;

  /// The subtree interval whose root is position g (O(depth) descent).
  CbtInterval interval_of(GuestId g) const;

  std::uint32_t depth_of(GuestId g) const;
  std::optional<GuestId> parent(GuestId g) const;

  /// Children of g: 0, 1, or 2 positions.
  std::vector<GuestId> children(GuestId g) const;

  bool is_edge(GuestId a, GuestId b) const;

  /// All tree edges (parent, child); O(N) — checkers and tests only.
  std::vector<std::pair<GuestId, GuestId>> edges() const;

  /// A tree edge with exactly one endpoint inside the range [rlo, rhi).
  struct CrossingEdge {
    GuestId parent_pos;
    GuestId child_pos;
    CbtInterval child_interval;  // subtree hanging below child_pos
    bool child_inside;           // true: child in range, parent outside
  };

  /// All tree edges crossing the border of [rlo, rhi); O(depth²) worst case.
  std::vector<CrossingEdge> crossing_edges(GuestId rlo, GuestId rhi) const;

  /// One maximal in-range subtree of the induced forest on [rlo, rhi).
  struct Fragment {
    GuestId entry;                   // in-range position whose parent is out of range (or tree root)
    std::uint32_t entry_depth;       // global depth of `entry`
    std::optional<GuestId> parent_pos;  // out-of-range parent (nullopt if entry is tree root)
    std::uint32_t max_internal_rel_depth;  // deepest in-range descendant, relative to entry
    // Crossing edges leaving this fragment downward: (from in-range parent,
    // to out-of-range child), with the parent's depth relative to `entry`.
    struct OutEdge {
      GuestId parent_pos;
      GuestId child_pos;
      std::uint32_t rel_depth;  // depth(parent_pos) - depth(entry)
    };
    std::vector<OutEdge> out_edges;
  };

  /// Decompose range [rlo, rhi) into fragments (sorted by entry position).
  std::vector<Fragment> fragments(GuestId rlo, GuestId rhi) const;

 private:
  void descend_crossings(CbtInterval iv, GuestId rlo, GuestId rhi,
                         std::vector<CrossingEdge>& out) const;

  std::uint64_t n_;
};

}  // namespace chs::topology
