// The Chord(N) guest topology (Definition 1 of the paper).
//
// For every guest i in [0, N), Chord(N) contains the edges (i, i + 2^k mod N)
// for 0 <= k < log N − 1; guest j = i + 2^k is the k-th finger of i. Finger 0
// is the base ring. Note Definition 1 deliberately stops one power short of
// N/2 — there are ceil(log2 N) − 1 fingers per node — and we follow it
// verbatim (the BiChord extension target adds the final power).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/cbt.hpp"
#include "util/bitops.hpp"

namespace chs::topology {

class Chord {
 public:
  explicit Chord(std::uint64_t n_guests) : n_(n_guests) {
    CHS_CHECK_MSG(n_ >= 2, "Chord needs at least two guests");
  }

  std::uint64_t n() const { return n_; }

  /// Number of fingers per guest (= number of MakeFinger waves).
  std::uint32_t num_fingers() const { return util::chord_num_fingers(n_); }

  /// The k-th finger of guest i: (i + 2^k) mod N.
  GuestId finger(GuestId i, std::uint32_t k) const {
    CHS_DCHECK(i < n_ && k < 63);
    return (i + (std::uint64_t{1} << k)) % n_;
  }

  bool is_finger_edge(GuestId a, GuestId b) const;

  /// All undirected finger edges, deduplicated; O(N log N).
  std::vector<std::pair<GuestId, GuestId>> edges() const;

 private:
  std::uint64_t n_;
};

}  // namespace chs::topology
