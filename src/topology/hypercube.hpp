// Hypercube(N) guest topology, an extension target for the scaffolding
// pattern (§6/§7 of the paper suggest building further robust topologies
// from the same Cbt scaffold).
//
// For N = 2^m, guests i and i xor 2^k are adjacent for every bit k < m. As
// undirected edges this is { (i, i + 2^k) : bit k of i is 0 } — a *subset*
// of the full-finger ring edges, so the inductive MakeFinger construction of
// Algorithm 1 builds a superset and the generic target layer prunes edges
// the target does not keep (see topology/target.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/cbt.hpp"
#include "util/bitops.hpp"

namespace chs::topology {

class Hypercube {
 public:
  explicit Hypercube(std::uint64_t n_guests) : n_(n_guests) {
    CHS_CHECK_MSG(util::is_pow2(n_) && n_ >= 2, "Hypercube needs N = 2^m >= 2");
  }

  std::uint64_t n() const { return n_; }
  std::uint32_t dimension() const { return util::floor_log2(n_); }

  bool is_edge(GuestId a, GuestId b) const {
    if (a >= n_ || b >= n_) return false;
    const std::uint64_t x = a ^ b;
    return util::is_pow2(x);
  }

  std::vector<std::pair<GuestId, GuestId>> edges() const;

 private:
  std::uint64_t n_;
};

}  // namespace chs::topology
