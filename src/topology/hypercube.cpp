#include "topology/hypercube.hpp"

namespace chs::topology {

std::vector<std::pair<GuestId, GuestId>> Hypercube::edges() const {
  std::vector<std::pair<GuestId, GuestId>> out;
  out.reserve(n_ * dimension() / 2);
  for (GuestId i = 0; i < n_; ++i) {
    for (std::uint32_t k = 0; k < dimension(); ++k) {
      const GuestId j = i ^ (std::uint64_t{1} << k);
      if (i < j) out.emplace_back(i, j);
    }
  }
  return out;
}

}  // namespace chs::topology
