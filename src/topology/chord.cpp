#include "topology/chord.hpp"

#include <algorithm>

namespace chs::topology {

bool Chord::is_finger_edge(GuestId a, GuestId b) const {
  if (a == b || a >= n_ || b >= n_) return false;
  for (std::uint32_t k = 0; k < num_fingers(); ++k) {
    if (finger(a, k) == b || finger(b, k) == a) return true;
  }
  return false;
}

std::vector<std::pair<GuestId, GuestId>> Chord::edges() const {
  std::vector<std::pair<GuestId, GuestId>> out;
  out.reserve(n_ * num_fingers());
  for (GuestId i = 0; i < n_; ++i) {
    for (std::uint32_t k = 0; k < num_fingers(); ++k) {
      const GuestId j = finger(i, k);
      if (i < j) {
        out.emplace_back(i, j);
      } else if (j < i) {
        out.emplace_back(j, i);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace chs::topology
