// Wall-clock phase profiling for step_round (DESIGN.md D12).
//
// A RoundProfile is a plain accumulator of nanoseconds per engine phase.
// Engine::set_profiler(&profile) arms it; every subsequent step_round adds
// one lap per phase. Profiling is *observability, not state*: the numbers
// are wall-clock and therefore non-deterministic, so they must never enter
// traces, checkpoints, report goldens, or anything else that is byte-diffed
// — the campaign layer surfaces them only in the explicitly non-golden
// `perf` block and the `--profile` summary table. When no profiler is
// installed the cost is one predicted branch per phase boundary.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace chs::sim {

/// The serial/parallel phases of Engine::step_round, in execution order.
enum class RoundPhase : std::uint8_t {
  kScan = 0,   // calendar release, delivery filter, active-set selection
  kStep = 1,   // protocol steps (sharded across the worker pool)
  kApply = 2,  // serial action merge + deferred edge mutations
  kPublish = 3,  // dirty-snapshot publish (sharded) + wake collection
  kObserver = 4,  // metrics, round observer, checkpoint-mark fold
};

inline constexpr std::size_t kRoundPhases = 5;

const char* round_phase_name(RoundPhase p);

/// Cumulative wall-clock nanoseconds per phase over `rounds` profiled
/// rounds. Deliberately has no persist_fields: wall-clock data is not
/// simulation state and must never ride a checkpoint.
struct RoundProfile {
  std::uint64_t ns[kRoundPhases] = {};
  std::uint64_t rounds = 0;

  void merge(const RoundProfile& o) {
    for (std::size_t i = 0; i < kRoundPhases; ++i) ns[i] += o.ns[i];
    rounds += o.rounds;
  }

  std::uint64_t total_ns() const {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kRoundPhases; ++i) t += ns[i];
    return t;
  }
};

/// Scoped lap timer used inside step_round. With a null profile every call
/// is a single predicted branch; with one armed, each lap() charges the
/// time since the previous lap to the named phase.
class PhaseTimer {
 public:
  explicit PhaseTimer(RoundProfile* p) : p_(p) {
    if (p_) last_ = std::chrono::steady_clock::now();
  }

  void lap(RoundPhase ph) {
    if (!p_) return;
    const auto now = std::chrono::steady_clock::now();
    p_->ns[static_cast<std::size_t>(ph)] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count());
    last_ = now;
  }

  /// Count the round as profiled (call once per step_round).
  void finish() {
    if (p_) ++p_->rounds;
  }

 private:
  RoundProfile* p_;
  std::chrono::steady_clock::time_point last_{};
};

inline const char* round_phase_name(RoundPhase p) {
  switch (p) {
    case RoundPhase::kScan: return "scan";
    case RoundPhase::kStep: return "step";
    case RoundPhase::kApply: return "apply";
    case RoundPhase::kPublish: return "publish";
    case RoundPhase::kObserver: return "observer";
  }
  return "?";
}

}  // namespace chs::sim
