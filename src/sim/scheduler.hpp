// Calendar (bucket-ring) queue for round-scheduled events (DESIGN.md D5).
//
// The engine schedules three kinds of future work — delayed message
// deliveries, held self-messages, and node wakeups — all keyed by an
// absolute due round. The seed implementation kept a std::map<round, vector>
// *per node*, paying O(log k) per insert and a full map probe per node per
// round. This queue is shared across all nodes: a power-of-two ring of
// buckets indexed by `due & mask`, O(1) amortized insert and drain.
//
// Ordering contract: drain_due(r) visits the events due at round r in the
// exact order they were scheduled (global FIFO per due round). The engine's
// determinism guarantee depends on this, so redistribution on growth and
// lap-filtering both preserve insertion order.
//
// Far-future events: the ring grows (up to `max_buckets`) so that the
// common case never wraps. Events beyond the maximum horizon share a bucket
// with earlier laps and are filtered at drain time — correct, just slower,
// and only reachable with pathological hold delays.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace chs::sim {

template <typename Event>
class CalendarQueue {
 public:
  explicit CalendarQueue(std::size_t min_buckets = 64,
                         std::size_t max_buckets = 4096)
      : max_buckets_(ceil_pow2(std::max<std::size_t>(max_buckets, 2))) {
    buckets_.resize(ceil_pow2(std::max<std::size_t>(min_buckets, 2)));
  }

  /// Schedule `ev` for drain_due(due). `due` must be >= the next round to be
  /// drained (scheduling into the past would silently wait a full lap).
  void schedule(std::uint64_t due, Event ev) {
    CHS_DCHECK(due >= horizon_);
    if (due - horizon_ >= buckets_.size() && buckets_.size() < max_buckets_) {
      grow(due);
    }
    auto& b = buckets_[due & (buckets_.size() - 1)];
    b.push_back(Entry{due, std::move(ev)});
    peak_bucket_occupancy_ = std::max(peak_bucket_occupancy_, b.size());
    ++size_;
  }

  /// Invoke fn(Event&&) for every event due at `round`, in scheduling order.
  /// Rounds must be drained in nondecreasing order. `fn` must not call back
  /// into schedule() (the engine schedules only while stepping, never while
  /// releasing).
  template <typename F>
  void drain_due(std::uint64_t round, F&& fn) {
    CHS_DCHECK(round >= horizon_);
    horizon_ = round + 1;
    auto& b = buckets_[round & (buckets_.size() - 1)];
    if (b.empty()) return;
    std::size_t w = 0;
    for (std::size_t r = 0; r < b.size(); ++r) {
      if (b[r].due == round) {
        --size_;
        fn(std::move(b[r].ev));
      } else {
        if (w != r) b[w] = std::move(b[r]);
        ++w;
      }
    }
    b.resize(w);  // keeps capacity: the bucket arena is reused across laps
  }

  /// Earliest due round among all pending events, or nullopt when empty.
  /// O(buckets + size) scan — called once per idle *gap* (not per round) by
  /// the engine's fast-forward, which amortizes it over the whole jump.
  std::optional<std::uint64_t> next_due_round() const {
    if (size_ == 0) return std::nullopt;
    std::uint64_t best = ~std::uint64_t{0};
    for (const auto& b : buckets_) {
      for (const auto& e : b) best = std::min(best, e.due);
    }
    return best;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate resident bytes (bucket ring + entry capacities): the
  /// bytes_per_host accounting. O(buckets) — call on demand, not per round.
  std::size_t live_bytes() const {
    std::size_t b = buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& bucket : buckets_) b += bucket.capacity() * sizeof(Entry);
    return b;
  }

  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t peak_bucket_occupancy() const { return peak_bucket_occupancy_; }

  /// Read-only visit of every pending event, in unspecified order. Used by
  /// Engine::restore to range-check restored node indices before commit.
  template <typename F>
  void for_each_event(F&& fn) const {
    for (const auto& b : buckets_) {
      for (const auto& e : b) fn(e.ev);
    }
  }

  /// Checkpoint/restore (DESIGN.md D9). The bucket layout is serialized
  /// verbatim — bucket count, per-bucket entry order, horizon — because the
  /// drain order the determinism contract pins *is* that layout: two events
  /// sharing a bucket across laps must come back in the same relative order
  /// they were scheduled in, even mid-lap.
  template <typename A>
  void persist_fields(A& a) {
    a(max_buckets_);
    a(horizon_);
    a(size_);
    a(peak_bucket_occupancy_);
    a(buckets_);
    if constexpr (A::kIsReader) {
      // A corrupt-but-CRC-valid blob cannot smuggle a non-power-of-two ring
      // in: the mask arithmetic depends on it.
      if (buckets_.empty() || (buckets_.size() & (buckets_.size() - 1)) != 0) {
        a.fail("calendar bucket count is not a power of two");
        buckets_.assign(64, {});
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t due;
    Event ev;

    template <typename A>
    void persist_fields(A& a) {
      a(due);
      a(ev);
    }
  };

  static std::size_t ceil_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  void grow(std::uint64_t due) {
    std::size_t want = buckets_.size();
    while (due - horizon_ >= want && want < max_buckets_) want <<= 1;
    std::vector<std::vector<Entry>> fresh(want);
    // Reinsert bucket by bucket; entries sharing a due round always share a
    // bucket, so their relative order survives redistribution.
    for (auto& b : buckets_) {
      for (auto& e : b) {
        fresh[e.due & (want - 1)].push_back(std::move(e));
      }
    }
    buckets_ = std::move(fresh);
  }

  std::vector<std::vector<Entry>> buckets_;
  std::size_t max_buckets_;
  std::uint64_t horizon_ = 0;  // lowest round that may still be drained
  std::size_t size_ = 0;
  std::size_t peak_bucket_occupancy_ = 0;
};

}  // namespace chs::sim
