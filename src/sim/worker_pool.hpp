// Persistent worker pool for the deterministic parallel round executor
// (DESIGN.md D6).
//
// The engine's parallel phases (stepping the active set, publishing dirty
// snapshots) are expressed as a fixed number of *shards*: independent units
// of work whose outputs land in per-shard buffers and are merged serially in
// shard order afterwards. Shard s is statically owned by participant
// s % (threads + 1) — the calling thread is always participant 0 — so no
// shared claim counter exists and determinism comes entirely from the merge
// order, never from thread scheduling.
//
// Threads are spawned once (Engine::set_worker_threads) and parked on a
// condition variable between dispatches; a dispatch is one broadcast plus
// one completion wait, so even short busy phases amortize. With no
// background threads (the default) run() never touches the mutex: the shard
// loop runs inline, byte-identical to a plain sequential loop.
//
// run() returns only after every worker that owns a shard has finished it,
// so a dispatch can never overlap a later one; a worker that wakes late for
// a dispatch in which it owned nothing simply observes the next generation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace chs::sim {

class WorkerPool {
 public:
  using ShardFn = std::function<void(std::size_t shard)>;

  WorkerPool() = default;
  ~WorkerPool() { resize(0); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of background threads. Total parallelism is threads() + 1: the
  /// caller of run() always participates.
  std::size_t threads() const { return workers_.size(); }

  /// Grow or shrink the pool to `n` background threads. Joins surplus
  /// threads on shrink; a cold configuration call, never overlapping run().
  void resize(std::size_t n) {
    if (n == workers_.size()) return;
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_ = true;
      cv_job_.notify_all();
    }
    for (auto& t : workers_) t.join();
    workers_.clear();
    stop_ = false;
    for (std::size_t i = 1; i <= n; ++i) {
      // New threads must treat the current generation as already seen:
      // generation_ survives resizes, and a stale-looking generation with
      // no live job would otherwise read a dangling dispatch.
      workers_.emplace_back([this, i, gen = generation_] { worker_main(i, gen); });
    }
  }

  /// Execute fn(s) for every shard s in [0, shards); blocks until all have
  /// completed. Participant p (0 = caller, 1..threads() = pool threads) runs
  /// shards p, p + P, p + 2P, ... where P = threads() + 1.
  void run(std::size_t shards, const ShardFn& fn) {
    if (shards == 0) return;
    if (workers_.empty() || shards == 1) {
      for (std::size_t s = 0; s < shards; ++s) fn(s);
      return;
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      job_ = &fn;
      shards_ = shards;
      completed_ = 0;
      ++generation_;
      cv_job_.notify_all();
    }
    const std::size_t mine = run_owned(fn, 0, shards);
    std::unique_lock<std::mutex> lk(mu_);
    completed_ += mine;
    cv_done_.wait(lk, [&] { return completed_ == shards_; });
    job_ = nullptr;
  }

 private:
  std::size_t run_owned(const ShardFn& fn, std::size_t participant,
                        std::size_t shards) const {
    const std::size_t stride = workers_.size() + 1;
    std::size_t done = 0;
    for (std::size_t s = participant; s < shards; s += stride) {
      fn(s);
      ++done;
    }
    return done;
  }

  void worker_main(std::size_t participant, std::uint64_t seen) {
    for (;;) {
      const ShardFn* job;
      std::size_t shards;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_job_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
        shards = shards_;
      }
      // job_ can only be null for a dispatch this thread missed entirely,
      // which in turn is only possible if it owned no shard in it (run()
      // blocks on shard owners) — but never dereference a dead dispatch.
      if (job == nullptr) continue;
      const std::size_t done = run_owned(*job, participant, shards);
      if (done != 0) {
        std::unique_lock<std::mutex> lk(mu_);
        completed_ += done;
        if (completed_ == shards_) cv_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  const ShardFn* job_ = nullptr;  // valid for the current generation
  std::size_t shards_ = 0;        // guarded by mu_
  std::size_t completed_ = 0;     // guarded by mu_
  std::uint64_t generation_ = 0;  // bumped per dispatch; guarded by mu_
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace chs::sim
