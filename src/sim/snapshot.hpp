// Snapshot storage behind the engine's neighbor views (DESIGN.md D10).
//
// The engine never touches `std::vector<PublicState>` directly any more: all
// snapshot reads and writes go through a *snapshot store*, chosen per
// protocol. The default VectorSnapshotStore below keeps the historical
// layout — one PublicState object per node, views are plain pointers — and
// is what every protocol gets for free. A protocol can opt into a custom
// layout (e.g. the stabilizer's struct-of-arrays arena in
// stabilizer/snapshot.hpp) by declaring
//
//   using SnapshotStore = MyStore;
//
// A store provides:
//   using PublicState = ...;            // the protocol's snapshot type
//   using View = ...;                   // what NodeCtx::view returns; must be
//                                       // cheap to copy, default-construct to
//                                       // a "no such neighbor" value, and be
//                                       // contextually convertible to bool
//   void init(std::size_t n);           // (re)create n empty snapshots
//   View view(NodeIndex i) const;       // read node i's snapshot
//   void publish_now(proto, state, i);  // serial unconditional refresh
//                                       // (engine ctor, republish fallback)
//   void begin_publish(std::size_t shards);
//   void publish(proto, state, i, shard);
//   bool publish_compare(proto, state, i, scratch, shard);
//   void finish_publish();
//   void store(i, const PublicState&);  // serial overwrite (restore path)
//   void materialize(i, PublicState&);  // copy node i's snapshot out in the
//                                       // canonical PublicState form (delta
//                                       // checkpoints serialize single nodes)
//   template <W> void save(W&) const;   // canonical serialization: count +
//                                       // per-node PublicState fields, byte-
//                                       // identical across store layouts and
//                                       // worker counts
//   std::size_t live_bytes() const;     // approximate heap footprint
//
// The engine's dirty-publish phase is bracketed by begin_publish(shards) /
// finish_publish(), both called serially. In between, publish and
// publish_compare may run concurrently from the worker pool; each node index
// is touched by exactly one shard per round, and the calling shard's index
// rides along so a store can keep per-shard scratch (no locking on the hot
// path). publish_compare refreshes node i and returns whether the snapshot
// changed (this drives dirty propagation); `scratch` is the calling shard's
// PublicState scratch object. Deferred work (e.g. slab appends) must be
// applied in finish_publish in (shard, call) order, which equals ascending
// node-index order — keeping any internal offsets deterministic at every
// worker count. view() is only called during the step phase, never
// concurrently with publishes, so handed-out views stay valid for the whole
// step.
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace chs::sim {

using graph::NodeIndex;

/// Default store: the engine's historical array-of-structs layout. Views are
/// pointers into the array, so every existing `const auto* view = ...;
/// view == nullptr` call site compiles unchanged. Publishes write each
/// node's object in place — already shard-safe, so the phase bracket and
/// shard index are no-ops here.
template <typename P>
class VectorSnapshotStore {
 public:
  using PublicState = typename P::PublicState;
  using View = const PublicState*;

  void init(std::size_t n) { publics_.assign(n, PublicState{}); }

  View view(NodeIndex i) const { return &publics_[i]; }

  template <typename State>
  void publish_now(P& proto, const State& state, NodeIndex i) {
    proto.publish(state, publics_[i]);
  }

  void begin_publish(std::size_t) {}

  template <typename State>
  void publish(P& proto, const State& state, NodeIndex i, std::size_t) {
    proto.publish(state, publics_[i]);
  }

  /// Refresh node i and report whether its snapshot changed. Protocols whose
  /// PublicState is not equality-comparable conservatively treat every
  /// publish as a change.
  template <typename State>
  bool publish_compare(P& proto, const State& state, NodeIndex i,
                       PublicState& scratch, std::size_t) {
    if constexpr (std::equality_comparable<PublicState>) {
      scratch = publics_[i];
      proto.publish(state, publics_[i]);
      return !(scratch == publics_[i]);
    } else {
      proto.publish(state, publics_[i]);
      return true;
    }
  }

  void finish_publish() {}

  void store(NodeIndex i, const PublicState& ps) { publics_[i] = ps; }

  void materialize(NodeIndex i, PublicState& out) const {
    out = publics_[i];
  }

  template <typename W>
  void save(W& w) const {
    w(publics_);
  }

  std::size_t live_bytes() const {
    return publics_.capacity() * sizeof(PublicState);
  }

 private:
  std::vector<PublicState> publics_;
};

namespace detail {

template <typename P>
struct snapshot_store {
  using type = VectorSnapshotStore<P>;
};

template <typename P>
  requires requires { typename P::SnapshotStore; }
struct snapshot_store<P> {
  using type = typename P::SnapshotStore;
};

/// The snapshot store Engine<P> uses: P::SnapshotStore if declared, else the
/// default vector store.
template <typename P>
using snapshot_store_t = typename snapshot_store<P>::type;

}  // namespace detail

}  // namespace chs::sim
