#include "sim/metrics.hpp"

#include <algorithm>

namespace chs::sim {

void RunMetrics::observe_initial(const graph::Graph& g) {
  initial_max_degree_ = g.max_degree();
  peak_max_degree_ = initial_max_degree_;
}

void RunMetrics::observe_round(const graph::Graph& g, std::uint64_t /*actions*/) {
  ++rounds_;
  const std::size_t d = g.max_degree();
  peak_max_degree_ = std::max(peak_max_degree_, d);
  trace_.push_back(d);
}

double RunMetrics::degree_expansion(const graph::Graph& final_graph) const {
  const std::size_t baseline =
      std::max<std::size_t>(1, std::max(initial_max_degree_, final_graph.max_degree()));
  return static_cast<double>(peak_max_degree_) / static_cast<double>(baseline);
}

}  // namespace chs::sim
