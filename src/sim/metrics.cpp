#include "sim/metrics.hpp"

#include <algorithm>

namespace chs::sim {

void RunMetrics::observe_initial(const graph::Graph& g) {
  initial_max_degree_ = g.max_degree();
  peak_max_degree_ = initial_max_degree_;
  cached_max_degree_ = initial_max_degree_;
}

void RunMetrics::observe_round(const graph::Graph& g, std::uint64_t actions,
                               std::uint64_t stepped, bool topo_changed) {
  ++rounds_;
  round_actions_ += actions;
  nodes_stepped_ += stepped;
  last_nodes_stepped_ = stepped;
  // max_degree() is O(n); skip the scan on the (common, quiescent) rounds
  // where no edge changed. Degrees are unchanged, so the cache is exact.
  if (topo_changed) cached_max_degree_ = g.max_degree();
  const std::size_t d = cached_max_degree_;
  peak_max_degree_ = std::max(peak_max_degree_, d);
  if (trace_recording_) trace_.push_back(d);
}

void RunMetrics::observe_idle_rounds(std::uint64_t k) {
  rounds_ += k;
  rounds_fast_forwarded_ += k;
  last_nodes_stepped_ = 0;
  // No topology change is possible in an empty round, so the cached max
  // degree is exact for every skipped entry; peak_max_degree_ already
  // covers it (observe_round maxed it in when the cache was set).
  if (trace_recording_) trace_.insert(trace_.end(), k, cached_max_degree_);
}

void RunMetrics::observe_scheduler(std::size_t pending_events,
                                   std::size_t peak_bucket_occupancy) {
  peak_pending_events_ = std::max(peak_pending_events_, pending_events);
  peak_bucket_occupancy_ =
      std::max(peak_bucket_occupancy_, peak_bucket_occupancy);
}

double RunMetrics::degree_expansion(const graph::Graph& final_graph) const {
  const std::size_t baseline =
      std::max<std::size_t>(1, std::max(initial_max_degree_, final_graph.max_degree()));
  return static_cast<double>(peak_max_degree_) / static_cast<double>(baseline);
}

}  // namespace chs::sim
