// Run metrics: the two quantities the paper analyzes (§2.2) plus counters.
//
// Convergence time  — rounds until the legality predicate holds (tracked by
//                     the caller via Engine::run_until).
// Degree expansion  — max degree of any node *during* the run divided by
//                     max(initial max degree, final max degree). A value of
//                     1.0 means the protocol never exceeded the degrees the
//                     configuration itself required.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chs::sim {

class RunMetrics {
 public:
  void observe_initial(const graph::Graph& g);
  void observe_round(const graph::Graph& g, std::uint64_t actions);

  void count_message() { ++messages_; }
  void count_edge_add() { ++edge_adds_; }
  void count_edge_del() { ++edge_dels_; }

  std::uint64_t messages() const { return messages_; }
  std::uint64_t edge_adds() const { return edge_adds_; }
  std::uint64_t edge_dels() const { return edge_dels_; }
  std::uint64_t rounds() const { return rounds_; }

  std::size_t initial_max_degree() const { return initial_max_degree_; }
  std::size_t peak_max_degree() const { return peak_max_degree_; }

  /// §2.2 degree expansion given the final topology.
  double degree_expansion(const graph::Graph& final_graph) const;

  /// Per-round max degree trace (index 0 = after the first round).
  const std::vector<std::size_t>& max_degree_trace() const { return trace_; }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t edge_adds_ = 0;
  std::uint64_t edge_dels_ = 0;
  std::uint64_t rounds_ = 0;
  std::size_t initial_max_degree_ = 0;
  std::size_t peak_max_degree_ = 0;
  std::vector<std::size_t> trace_;
};

}  // namespace chs::sim
