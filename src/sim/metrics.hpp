// Run metrics: the two quantities the paper analyzes (§2.2) plus counters.
//
// Convergence time  — rounds until the legality predicate holds (tracked by
//                     the caller via Engine::run_until).
// Degree expansion  — max degree of any node *during* the run divided by
//                     max(initial max degree, final max degree). A value of
//                     1.0 means the protocol never exceeded the degrees the
//                     configuration itself required.
//
// Engine-layer counters (DESIGN.md D5): nodes stepped and snapshots
// published per run measure what the active-set loop and dirty publishing
// actually save; scheduler occupancy tracks calendar-queue pressure.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chs::sim {

class RunMetrics {
 public:
  void observe_initial(const graph::Graph& g);
  void observe_round(const graph::Graph& g, std::uint64_t actions,
                     std::uint64_t stepped, bool topo_changed);
  /// Account `k` provably empty rounds skipped by the idle fast-forward:
  /// byte-identical bookkeeping to observing each of them (zero nodes
  /// stepped, topology unchanged, cached max degree repeated in the trace).
  void observe_idle_rounds(std::uint64_t k);
  void observe_scheduler(std::size_t pending_events,
                         std::size_t peak_bucket_occupancy);

  /// Resident-memory footprint per host, recorded on demand (never
  /// automatically: capacities depend on the worker-count knob, and a
  /// per-round sample would leak that knob into checkpoint bytes, breaking
  /// the any-worker-count byte-identity rule). Engine::record_live_bytes is
  /// the intended writer; 0 means "never sampled".
  void set_bytes_per_host(std::uint64_t b) { bytes_per_host_ = b; }
  std::uint64_t bytes_per_host() const { return bytes_per_host_; }

  void count_message() { ++messages_; }
  /// A network delivery suppressed by the engine's delivery filter
  /// (message-loss / partition fault injection — DESIGN.md D7).
  void count_message_dropped() { ++messages_dropped_; }
  void count_edge_add() { ++edge_adds_; }
  void count_edge_del() { ++edge_dels_; }
  /// A deferred protocol deletion dropped at apply time because its
  /// connectivity-certificate path no longer existed in the live graph
  /// (Engine commit-time validation; see ActionBuffer::EdgeDel::witness).
  void count_stale_cert_drop() { ++stale_cert_drops_; }
  void count_snapshots(std::uint64_t k) { snapshots_published_ += k; }

  std::uint64_t messages() const { return messages_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t edge_adds() const { return edge_adds_; }
  std::uint64_t edge_dels() const { return edge_dels_; }
  std::uint64_t stale_cert_drops() const { return stale_cert_drops_; }
  std::uint64_t rounds() const { return rounds_; }

  /// Cumulative protocol actions (sends + holds + edge requests) over all
  /// observed rounds — the `actions` argument of observe_round, summed. The
  /// per-window series recorder (src/obs/) samples this as its activity
  /// counter; zero across a window means the network was truly quiescent.
  std::uint64_t round_actions() const { return round_actions_; }

  /// Cumulative nodes stepped over all rounds (== n * rounds when every
  /// node steps every round; far less once the active set shrinks).
  std::uint64_t nodes_stepped() const { return nodes_stepped_; }
  /// Nodes stepped in the most recent round.
  std::uint64_t last_nodes_stepped() const { return last_nodes_stepped_; }
  /// Cumulative Protocol::publish invocations (dirty snapshots only).
  std::uint64_t snapshots_published() const { return snapshots_published_; }
  /// Rounds skipped wholesale by the idle fast-forward (subset of rounds()).
  std::uint64_t rounds_fast_forwarded() const { return rounds_fast_forwarded_; }
  /// High-water mark of events pending in the engine calendars.
  std::size_t peak_pending_events() const { return peak_pending_events_; }
  /// Largest single calendar bucket ever observed.
  std::size_t peak_bucket_occupancy() const { return peak_bucket_occupancy_; }

  std::size_t initial_max_degree() const { return initial_max_degree_; }
  std::size_t peak_max_degree() const { return peak_max_degree_; }

  /// §2.2 degree expansion given the final topology.
  double degree_expansion(const graph::Graph& final_graph) const;

  /// Per-round max degree trace (index 0 = after the first round).
  const std::vector<std::size_t>& max_degree_trace() const { return trace_; }

  /// Disable the per-round trace for unbounded runs (benchmarks): it grows
  /// by one entry per round forever. Counters and peaks are unaffected.
  void set_trace_recording(bool on) {
    trace_recording_ = on;
    if (!on) trace_.clear();
  }

  /// Checkpoint/restore (DESIGN.md D9): every counter, peak, and the full
  /// per-round trace round-trip, so a resumed run's final RunMetrics — and
  /// any report derived from it — is bit-for-bit the uninterrupted run's.
  template <typename A>
  void persist_fields(A& a) {
    a(messages_);
    a(messages_dropped_);
    a(edge_adds_);
    a(edge_dels_);
    a(rounds_);
    a(round_actions_);
    a(nodes_stepped_);
    a(last_nodes_stepped_);
    a(snapshots_published_);
    a(rounds_fast_forwarded_);
    a(peak_pending_events_);
    a(peak_bucket_occupancy_);
    a(initial_max_degree_);
    a(peak_max_degree_);
    a(bytes_per_host_);
    a(cached_max_degree_);
    a(trace_recording_);
    a(trace_);
    a(stale_cert_drops_);
  }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t edge_adds_ = 0;
  std::uint64_t edge_dels_ = 0;
  std::uint64_t stale_cert_drops_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t round_actions_ = 0;
  std::uint64_t nodes_stepped_ = 0;
  std::uint64_t last_nodes_stepped_ = 0;
  std::uint64_t snapshots_published_ = 0;
  std::uint64_t rounds_fast_forwarded_ = 0;
  std::size_t peak_pending_events_ = 0;
  std::size_t peak_bucket_occupancy_ = 0;
  std::size_t initial_max_degree_ = 0;
  std::size_t peak_max_degree_ = 0;
  std::uint64_t bytes_per_host_ = 0;
  std::size_t cached_max_degree_ = 0;  // valid while the topology is unchanged
  bool trace_recording_ = true;
  std::vector<std::size_t> trace_;
};

}  // namespace chs::sim
