// Synchronous message-passing overlay-network simulator (§2.1 of the paper).
//
// Computation proceeds in synchronous rounds. In round r each node
//   1. receives every message sent to it in round r-1,
//   2. reads the *previous-round* public state of each current neighbor
//      (the paper's "nodes exchange their local state" — see DESIGN.md D4),
//   3. executes protocol actions: mutate its own state, send messages to
//      current neighbors, and request edge mutations.
// Edge mutations follow the overlay model: a node may delete any incident
// edge, and may *introduce* two of its current neighbors to each other
// (creating the edge between them). All sends and mutations are validated
// against the topology as it stood at the start of the round and applied
// between rounds, so the round is atomic and order-independent.
//
// The engine is templated on a Protocol type providing:
//   struct Message;                          // copyable payload
//   struct NodeState;                        // full per-node state
//   struct PublicState;                      // the part neighbors can read
//   void init_node(NodeId, NodeState&, util::Rng&);
//   void publish(const NodeState&, PublicState&);
//   void step(NodeCtx<Protocol>&);           // one round for one node
//
// Internally the engine is layered (DESIGN.md D5):
//   * CalendarQueue (scheduler.hpp) — one shared bucket ring each for
//     delayed deliveries, held self-messages, and wakeups;
//   * MailboxPool (mailbox.hpp)     — inbox arenas, one clear point/round;
//   * dirty-snapshot publishing     — Protocol::publish runs only for nodes
//     whose state may have changed (stepped or externally mutated);
//     republish() stays as the full-refresh fault-injection fallback;
//   * active-set round loop         — in StepMode::kActiveSet only nodes
//     with deliveries, due wakeups, incident topology deltas, or changed
//     neighbor snapshots are stepped. A protocol opts in by declaring
//     `static constexpr bool kUsesActiveSet = true` and registering
//     wakeups (NodeCtx::request_wakeup) for every spontaneous, timer-driven
//     action; protocols without the trait run in StepMode::kAll, which is
//     round-for-round identical to the classic step-everyone loop.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace chs::sim {

using graph::NodeId;
using graph::NodeIndex;

/// How step_round selects the nodes to step.
enum class StepMode : std::uint8_t {
  kAll,        // classic loop: every node, every round
  kActiveSet,  // only nodes with a reason to act (requires protocol support)
};

namespace detail {
template <typename P>
constexpr bool protocol_uses_active_set() {
  if constexpr (requires { P::kUsesActiveSet; }) {
    return P::kUsesActiveSet;
  } else {
    return false;
  }
}
}  // namespace detail

template <typename P>
class Engine;

/// Per-node, per-round view handed to Protocol::step.
template <typename P>
class NodeCtx {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;

  NodeId self() const { return self_; }
  std::uint64_t round() const { return round_; }
  NodeState& state() { return *state_; }
  const NodeState& state() const { return *state_; }
  util::Rng& rng() { return *rng_; }

  /// Messages delivered this round (sent last round), sender order.
  std::span<const Envelope<Message>> inbox() const { return inbox_; }

  /// Neighbor ids as of the start of this round (sorted).
  const std::vector<NodeId>& neighbors() const { return *neighbors_; }

  bool is_neighbor(NodeId v) const {
    return std::binary_search(neighbors_->begin(), neighbors_->end(), v);
  }

  /// Previous-round public state of neighbor v; null if v is not a neighbor.
  const PublicState* view(NodeId v) const {
    if (!is_neighbor(v)) return nullptr;
    return engine_->public_state_ptr(v);
  }

  /// Send a message over an existing edge; delivered next round.
  void send(NodeId to, Message m) { engine_->queue_send(self_, to, std::move(m)); }

  /// Deliver a message to self after `delay` rounds (>= 1). Used to pace
  /// multi-guest-level wave processing inside one host (DESIGN.md D2).
  void hold(Message m, std::uint64_t delay) {
    CHS_CHECK(delay >= 1);
    engine_->queue_hold(self_, round_ + delay, std::move(m));
  }

  /// Ask to be stepped again in `delay` rounds (>= 1) even if no message
  /// arrives. Active-set protocols must call this for every spontaneous
  /// (timer- or deadline-driven) action; it is a no-op signal otherwise —
  /// never an action, never delivers a message.
  void request_wakeup(std::uint64_t delay) {
    CHS_CHECK(delay >= 1);
    engine_->queue_wakeup(self_, round_ + delay);
  }

  /// Connect two of this node's current neighbors by a new logical edge.
  void introduce(NodeId a, NodeId b, const char* site = "?") {
    engine_->queue_introduce(self_, a, b, site);
  }

  /// Delete the edge between self and v.
  void disconnect(NodeId v, const char* site = "?") {
    engine_->queue_disconnect(self_, v, site);
  }

  /// Debug: who last requested deletion of edge (self, v), if recorded.
  /// Requires Engine::set_edge_delete_tracing(true).
  const char* last_delete_site(NodeId v) const {
    return engine_->last_delete_site(self_, v);
  }

 private:
  friend class Engine<P>;
  NodeId self_ = 0;
  std::uint64_t round_ = 0;
  NodeState* state_ = nullptr;
  util::Rng* rng_ = nullptr;
  std::span<const Envelope<Message>> inbox_;
  const std::vector<NodeId>* neighbors_ = nullptr;
  Engine<P>* engine_ = nullptr;
};

template <typename P>
class Engine {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;

  Engine(graph::Graph g, P protocol, std::uint64_t seed)
      : graph_(std::move(g)), protocol_(std::move(protocol)), root_rng_(seed) {
    const std::size_t n = graph_.size();
    states_.resize(n);
    publics_.resize(n);
    mail_.init(n);
    woken_mark_.assign(n, 0);
    dirty_mark_.assign(n, 0);
    rngs_.reserve(n);
    if constexpr (detail::protocol_uses_active_set<P>()) {
      step_mode_ = StepMode::kActiveSet;
    }
    for (NodeIndex i = 0; i < n; ++i) {
      rngs_.push_back(root_rng_.split(graph_.id_of(i)));
      protocol_.init_node(graph_.id_of(i), states_[i], rngs_[i]);
    }
    republish();
    metrics_.observe_initial(graph_);
  }

  const graph::Graph& graph() const { return graph_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  std::uint64_t round() const { return round_; }
  RunMetrics& metrics() { return metrics_; }
  const RunMetrics& metrics() const { return metrics_; }

  StepMode step_mode() const { return step_mode_; }

  /// Force a step mode. Switching to kActiveSet re-activates every node so
  /// protocols (re)establish their wakeup schedules.
  void set_step_mode(StepMode mode) {
    step_mode_ = mode;
    if (mode == StepMode::kActiveSet) wake_all();
  }

  const NodeState& state(NodeId id) const { return states_[graph_.index_of(id)]; }

  /// Mutable state access for fault injection and harness glue. Marks the
  /// node dirty (its snapshot republishes at the end of the next round) and
  /// active (it will be stepped), so external mutation is never missed by
  /// the active-set loop.
  NodeState& state_mut(NodeId id) {
    const NodeIndex i = graph_.index_of(id);
    mark_dirty(i);
    wake(i);
    return states_[i];
  }

  /// Refresh every public snapshot and re-activate every node; the
  /// full-strength fallback after arbitrary external mutation.
  void republish() {
    for (NodeIndex i = 0; i < graph_.size(); ++i) {
      protocol_.publish(states_[i], publics_[i]);
    }
    metrics_.count_snapshots(graph_.size());
    wake_all();
  }

  /// Targeted refresh after mutating a single node's state: publish its
  /// snapshot immediately (visible to neighbor views next round) and
  /// re-activate it plus its neighbors. Equivalent to republish() when no
  /// other node's state changed, without the O(n) sweep.
  void republish(NodeId id) {
    const NodeIndex i = graph_.index_of(id);
    protocol_.publish(states_[i], publics_[i]);
    metrics_.count_snapshots(1);
    wake(i);
    for (NodeId nb : graph_.neighbors(id)) wake(graph_.index_of(nb));
  }

  /// Direct topology mutation for fault injection; bypasses overlay rules.
  /// Both endpoints are re-activated so they observe the delta.
  bool inject_edge(NodeId u, NodeId v) {
    if (!graph_.add_edge(u, v)) return false;
    topo_changed_ = true;
    wake(graph_.index_of(u));
    wake(graph_.index_of(v));
    return true;
  }
  bool inject_edge_removal(NodeId u, NodeId v) {
    if (!graph_.remove_edge(u, v)) return false;
    topo_changed_ = true;
    wake(graph_.index_of(u));
    wake(graph_.index_of(v));
    return true;
  }

  /// Asynchrony model (§7 future work): each message is delayed uniformly
  /// in [1, d] rounds instead of exactly 1. Channels stay reliable and
  /// FIFO-per-round; protocol budgets should be scaled via
  /// Params::delay_slack to match.
  void set_max_message_delay(std::uint32_t d) {
    CHS_CHECK(d >= 1);
    max_delay_ = d;
  }

  /// Record which protocol site requested each applied edge deletion
  /// (ctx.last_delete_site). Off by default: the record grows with every
  /// deletion ever applied, which is unbounded under churn.
  void set_edge_delete_tracing(bool on) {
    edge_trace_ = on;
    if (!on) last_delete_.clear();
  }

  /// Execute one synchronous round.
  void step_round() {
    round_actions_ = 0;
    mail_.begin_round();

    // --- release: wakeups, then held self-messages, then delayed sends.
    // Holds-before-sends reproduces the seed's per-node inbox order.
    wakeups_.drain_due(round_, [&](NodeIndex i) { wake(i); });
    holds_.drain_due(round_, [&](HoldEvent&& h) {
      wake(h.to);
      mail_.deliver(h.to, Envelope<Message>{graph_.id_of(h.to), std::move(h.msg)});
    });
    delayed_.drain_due(round_, [&](SendEvent&& s) {
      wake(s.to);
      mail_.deliver(s.to, std::move(s.env));
    });

    // --- select this round's step set (ascending index order: scheduling
    // order inside the calendars, and thus determinism, depends on it).
    stepped_.clear();
    if (step_mode_ == StepMode::kAll) {
      for (NodeIndex i = 0; i < graph_.size(); ++i) stepped_.push_back(i);
      for (NodeIndex i : woken_) woken_mark_[i] = 0;
      woken_.clear();
    } else {
      stepped_.swap(woken_);
      for (NodeIndex i : stepped_) woken_mark_[i] = 0;
      std::sort(stepped_.begin(), stepped_.end());
    }

    // --- step against the start-of-round topology and snapshots.
    for (NodeIndex i : stepped_) {
      NodeCtx<P> ctx;
      ctx.self_ = graph_.id_of(i);
      ctx.round_ = round_;
      ctx.state_ = &states_[i];
      ctx.rng_ = &rngs_[i];
      ctx.inbox_ = mail_.inbox(i);
      ctx.neighbors_ = &graph_.neighbors(ctx.self_);
      ctx.engine_ = this;
      protocol_.step(ctx);
    }

    // --- apply deferred edge mutations (deletes first, so an introduce in
    // the same round re-creates deliberately).
    for (std::size_t di = 0; di < pending_deletes_.size(); ++di) {
      const auto& [u, v] = pending_deletes_[di];
      if (graph_.remove_edge(u, v)) {
        metrics_.count_edge_del();
        topo_changed_ = true;
        wake(graph_.index_of(u));
        wake(graph_.index_of(v));
        if (edge_trace_) record_delete_site(u, v, pending_delete_sites_[di]);
      }
    }
    pending_delete_sites_.clear();
    for (const auto& [u, v] : pending_adds_) {
      if (graph_.add_edge(u, v)) {
        metrics_.count_edge_add();
        topo_changed_ = true;
        wake(graph_.index_of(u));
        wake(graph_.index_of(v));
      }
    }
    pending_deletes_.clear();
    pending_adds_.clear();

    // --- dirty-snapshot publish: only nodes whose state may have changed
    // (stepped this round, or externally mutated via state_mut).
    for (NodeIndex i : stepped_) mark_dirty(i);
    std::sort(dirty_.begin(), dirty_.end());
    for (NodeIndex i : dirty_) {
      dirty_mark_[i] = 0;
      if (step_mode_ == StepMode::kActiveSet) {
        publish_and_propagate(i);
      } else {
        protocol_.publish(states_[i], publics_[i]);
      }
    }
    metrics_.count_snapshots(dirty_.size());
    dirty_.clear();

    const std::uint64_t deliveries = mail_.delivered_this_round();
    mail_.end_round();

    metrics_.observe_round(graph_, round_actions_, stepped_.size(),
                           topo_changed_);
    metrics_.observe_scheduler(pending_events(), peak_bucket_occupancy());
    topo_changed_ = false;
    if (round_actions_ == 0 && deliveries == 0 && !holds_pending()) {
      ++quiescent_streak_;
    } else {
      quiescent_streak_ = 0;
    }
    ++round_;
  }

  /// Consecutive fully-silent rounds (no deliveries, holds, or actions).
  std::uint64_t quiescent_streak() const { return quiescent_streak_; }

  /// Nodes stepped in the most recent round (n in StepMode::kAll).
  std::size_t last_stepped() const { return stepped_.size(); }

  /// Events (deliveries + holds + wakeups) currently scheduled.
  std::size_t pending_events() const {
    return delayed_.size() + holds_.size() + wakeups_.size();
  }

  std::size_t peak_bucket_occupancy() const {
    return std::max({delayed_.peak_bucket_occupancy(),
                     holds_.peak_bucket_occupancy(),
                     wakeups_.peak_bucket_occupancy()});
  }

  /// Run until `done(*this)` holds or max_rounds elapse. Returns the number
  /// of rounds executed and whether the predicate was satisfied.
  template <typename Pred>
  std::pair<std::uint64_t, bool> run_until(Pred&& done, std::uint64_t max_rounds) {
    const std::uint64_t start = round_;
    while (round_ - start < max_rounds) {
      if (done(*this)) return {round_ - start, true};
      step_round();
    }
    return {round_ - start, done(*this)};
  }

 private:
  friend class NodeCtx<P>;

  struct HoldEvent {
    NodeIndex to;
    Message msg;
  };
  struct SendEvent {
    NodeIndex to;
    Envelope<Message> env;
  };

  const PublicState* public_state_ptr(NodeId v) const {
    return &publics_[graph_.index_of(v)];
  }

  void wake(NodeIndex i) {
    if (!woken_mark_[i]) {
      woken_mark_[i] = 1;
      woken_.push_back(i);
    }
  }

  void wake_all() {
    for (NodeIndex i = 0; i < graph_.size(); ++i) wake(i);
  }

  void mark_dirty(NodeIndex i) {
    if (!dirty_mark_[i]) {
      dirty_mark_[i] = 1;
      dirty_.push_back(i);
    }
  }

  /// Publish node i's snapshot; if it changed, re-activate its neighbors
  /// (their next check_local / view reads see different data). Protocols
  /// whose PublicState is not equality-comparable conservatively treat
  /// every publish as a change.
  void publish_and_propagate(NodeIndex i) {
    bool changed = true;
    if constexpr (std::equality_comparable<PublicState>) {
      scratch_public_ = publics_[i];
      protocol_.publish(states_[i], publics_[i]);
      changed = !(scratch_public_ == publics_[i]);
    } else {
      protocol_.publish(states_[i], publics_[i]);
    }
    if (changed) {
      for (NodeId nb : graph_.neighbors(graph_.id_of(i))) {
        wake(graph_.index_of(nb));
      }
    }
  }

  void queue_send(NodeId from, NodeId to, Message m) {
    CHS_CHECK_MSG(graph_.has_edge(from, to) || from == to,
                  "send over non-existent edge");
    const std::uint64_t delay =
        max_delay_ == 1 ? 1 : 1 + root_rng_.next_below(max_delay_);
    delayed_.schedule(round_ + delay,
                      SendEvent{graph_.index_of(to),
                                Envelope<Message>{from, std::move(m)}});
    metrics_.count_message();
    ++round_actions_;
  }

  void queue_hold(NodeId self, std::uint64_t due_round, Message m) {
    holds_.schedule(due_round, HoldEvent{graph_.index_of(self), std::move(m)});
    ++round_actions_;
  }

  void queue_wakeup(NodeId self, std::uint64_t due_round) {
    // Bookkeeping only: not a protocol action, invisible to metrics and to
    // quiescence detection.
    wakeups_.schedule(due_round, graph_.index_of(self));
  }

  void queue_introduce(NodeId self, NodeId a, NodeId b, const char* site = "?") {
    CHS_CHECK_MSG(a != b, "introduce(a, a)");
    const bool a_ok = a == self || graph_.has_edge(self, a);
    const bool b_ok = b == self || graph_.has_edge(self, b);
    if (!(a_ok && b_ok)) {
      std::fprintf(stderr,
                   "introduce of non-neighbors: self=%llu a=%llu(%d) "
                   "b=%llu(%d) round=%llu site=%s\n",
                   static_cast<unsigned long long>(self),
                   static_cast<unsigned long long>(a), int(a_ok),
                   static_cast<unsigned long long>(b), int(b_ok),
                   static_cast<unsigned long long>(round_), site);
      CHS_CHECK_MSG(false, "introduce of non-neighbors");
    }
    pending_adds_.emplace_back(a, b);
    ++round_actions_;
  }

  void queue_disconnect(NodeId self, NodeId v, const char* site = "?") {
    // The edge may have been deleted by the other endpoint in an earlier
    // round; tolerate (the request is then a no-op).
    pending_deletes_.emplace_back(self, v);
    pending_delete_sites_.push_back(site);
    ++round_actions_;
  }

  void record_delete_site(NodeId u, NodeId v, const char* site) {
    // Bounded: long churn runs otherwise grow this map without limit.
    if (last_delete_.size() >= kMaxDeleteRecords) last_delete_.clear();
    last_delete_[std::minmax(u, v)] = site;
  }

  const char* last_delete_site(NodeId a, NodeId b) {
    if (!edge_trace_) return "(untracked)";
    auto it = last_delete_.find(std::minmax(a, b));
    return it == last_delete_.end() ? "(none)" : it->second;
  }

  bool holds_pending() const { return !holds_.empty() || !delayed_.empty(); }

  static constexpr std::size_t kMaxDeleteRecords = 1u << 20;

  graph::Graph graph_;
  P protocol_;
  util::Rng root_rng_;
  std::vector<NodeState> states_;
  std::vector<PublicState> publics_;
  PublicState scratch_public_{};
  MailboxPool<Message> mail_;
  CalendarQueue<SendEvent> delayed_;
  CalendarQueue<HoldEvent> holds_;
  CalendarQueue<NodeIndex> wakeups_;
  std::vector<util::Rng> rngs_;
  std::vector<std::pair<NodeId, NodeId>> pending_adds_;
  std::vector<std::pair<NodeId, NodeId>> pending_deletes_;
  std::vector<const char*> pending_delete_sites_;
  std::map<std::pair<NodeId, NodeId>, const char*> last_delete_;
  RunMetrics metrics_;
  StepMode step_mode_ = StepMode::kAll;
  bool edge_trace_ = false;
  bool topo_changed_ = false;
  std::vector<NodeIndex> woken_;   // active set accumulating for next round
  std::vector<std::uint8_t> woken_mark_;
  std::vector<NodeIndex> stepped_;  // nodes stepped in the current round
  std::vector<NodeIndex> dirty_;    // snapshots to publish this round
  std::vector<std::uint8_t> dirty_mark_;
  std::uint32_t max_delay_ = 1;
  std::uint64_t round_ = 0;
  std::uint64_t round_actions_ = 0;
  std::uint64_t quiescent_streak_ = 0;
};

}  // namespace chs::sim
