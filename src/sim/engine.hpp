// Synchronous message-passing overlay-network simulator (§2.1 of the paper).
//
// Computation proceeds in synchronous rounds. In round r each node
//   1. receives every message sent to it in round r-1,
//   2. reads the *previous-round* public state of each current neighbor
//      (the paper's "nodes exchange their local state" — see DESIGN.md D4),
//   3. executes protocol actions: mutate its own state, send messages to
//      current neighbors, and request edge mutations.
// Edge mutations follow the overlay model: a node may delete any incident
// edge, and may *introduce* two of its current neighbors to each other
// (creating the edge between them). All sends and mutations are validated
// against the topology as it stood at the start of the round and applied
// between rounds, so the round is atomic and order-independent.
//
// The engine is templated on a Protocol type providing:
//   struct Message;                          // copyable payload
//   struct NodeState;                        // full per-node state
//   struct PublicState;                      // the part neighbors can read
//   void init_node(NodeId, NodeState&, util::Rng&);
//   void publish(const NodeState&, PublicState&);
//   void step(NodeCtx<Protocol>&);           // one round for one node
//
// Internally the engine is layered (DESIGN.md D5, D6):
//   * CalendarQueue (scheduler.hpp) — one shared bucket ring each for
//     delayed deliveries, held self-messages, and wakeups;
//   * MailboxPool (mailbox.hpp)     — inbox arenas, one clear point/round;
//   * dirty-snapshot publishing     — Protocol::publish runs only for nodes
//     whose state may have changed (stepped or externally mutated);
//     republish() stays as the full-refresh fault-injection fallback;
//   * active-set round loop         — in StepMode::kActiveSet only nodes
//     with deliveries, due wakeups, incident topology deltas, or changed
//     neighbor snapshots are stepped. A protocol opts in by declaring
//     `static constexpr bool kUsesActiveSet = true` and registering
//     wakeups (NodeCtx::request_wakeup) for every spontaneous, timer-driven
//     action; protocols without the trait run in StepMode::kAll, which is
//     round-for-round identical to the classic step-everyone loop;
//   * deterministic parallel rounds — set_worker_threads(k) shards the
//     stepped set and the dirty-publish set across a persistent WorkerPool.
//     Protocol actions are recorded into per-shard ActionBuffers and merged
//     in ascending node-index order, so the applied action order — and
//     therefore every trace — is bit-for-bit identical to the sequential
//     engine at any thread count (DESIGN.md D6);
//   * idle fast-forward (opt-in)    — set_idle_fast_forward(true) lets a
//     round in which nothing is active and nothing is due jump straight to
//     the next scheduled calendar event, making fully idle gap rounds O(1)
//     in aggregate while preserving round numbering, metrics, and traces.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "persist/io.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"
#include "sim/worker_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace chs::sim {

using graph::NodeId;
using graph::NodeIndex;

/// Sentinel for EdgeDel::witness: the deletion carries no connectivity
/// certificate and is applied unconditionally.
inline constexpr NodeId kNoWitness = ~NodeId{0};

/// How step_round selects the nodes to step.
enum class StepMode : std::uint8_t {
  kAll,        // classic loop: every node, every round
  kActiveSet,  // only nodes with a reason to act (requires protocol support)
};

namespace detail {
template <typename P>
constexpr bool protocol_uses_active_set() {
  if constexpr (requires { P::kUsesActiveSet; }) {
    return P::kUsesActiveSet;
  } else {
    return false;
  }
}
}  // namespace detail

template <typename P>
class Engine;

/// One applied topology mutation, as reported to a round observer: protocol
/// edge actions and external inject_edge / inject_edge_removal calls alike.
/// Recorded only while an observer is installed.
struct EdgeDelta {
  NodeId u = 0, v = 0;
  bool removed = false;
};

/// Per-shard record of the protocol actions emitted while stepping
/// (DESIGN.md D6). NodeCtx appends here instead of mutating the engine, so
/// steps are data-parallel; the engine merges buffers in shard order (=
/// ascending node-index order) after the step phase, which reproduces the
/// sequential engine's application order exactly. Kinds are stored in
/// separate arenas: the only orders that matter downstream are per-calendar
/// and per-mutation-list, each of which sees one kind.
template <typename M>
struct ActionBuffer {
  struct Send {
    NodeIndex from, to;
    M msg;
  };
  struct Hold {
    NodeIndex self;
    std::uint64_t due;
    M msg;
  };
  struct Wakeup {
    NodeIndex self;
    std::uint64_t due;
  };
  struct EdgeAdd {
    NodeId a, b;
  };
  struct EdgeDel {
    NodeId a, b;
    const char* site;  // deletions carry provenance for edge-delete tracing
    // Connectivity certificate (kNoWitness = none): the deleter saw the
    // path a-witness-b in its (one-round-stale) views. The engine re-checks
    // that path against the live graph at apply time and drops the delete
    // if it has vanished — a concurrent churn or deletion may have removed
    // a certificate edge after the decision was made, and committing the
    // delete anyway can disconnect the network.
    NodeId witness;
  };

  std::vector<Send> sends;
  std::vector<Hold> holds;
  std::vector<Wakeup> wakeups;
  std::vector<EdgeAdd> introduces;
  std::vector<EdgeDel> disconnects;

  /// Protocol actions recorded (wakeups excluded — they are bookkeeping,
  /// invisible to metrics and quiescence detection).
  std::uint64_t actions() const {
    return sends.size() + holds.size() + introduces.size() +
           disconnects.size();
  }

  void clear() {  // keeps capacities: the arenas are reused every round
    sends.clear();
    holds.clear();
    wakeups.clear();
    introduces.clear();
    disconnects.clear();
  }
};

/// Per-node, per-round view handed to Protocol::step.
template <typename P>
class NodeCtx {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;
  using SnapshotView = typename detail::snapshot_store_t<P>::View;

  NodeId self() const { return self_; }
  std::uint64_t round() const { return round_; }
  NodeState& state() { return *state_; }
  const NodeState& state() const { return *state_; }
  util::Rng& rng() { return *rng_; }

  /// Messages delivered this round (sent last round), sender order.
  std::span<const Envelope<Message>> inbox() const { return inbox_; }

  /// Neighbor ids as of the start of this round (sorted).
  const std::vector<NodeId>& neighbors() const { return *neighbors_; }

  bool is_neighbor(NodeId v) const {
    return std::binary_search(neighbors_->begin(), neighbors_->end(), v);
  }

  /// Previous-round public state of neighbor v; a false-y view (null
  /// pointer for the default store, invalid PublicView for arena stores) if
  /// v is not a neighbor. The last lookup is memoized: protocols typically
  /// probe the same neighbor from several checks within one step, and the
  /// repeat costs two binary searches without the cache.
  SnapshotView view(NodeId v) const {
    if (v == view_cache_id_) return view_cache_;
    SnapshotView p =
        is_neighbor(v) ? engine_->snapshot_view(v) : SnapshotView{};
    view_cache_id_ = v;
    view_cache_ = p;
    return p;
  }

  /// Send a message over an existing edge; delivered after the engine's
  /// message delay (1 round by default). The edge-existence check is a
  /// debug-build assertion (CHS_DCHECK): protocols address only neighbors
  /// they just read via neighbors()/view(), so the release-build binary
  /// search per send was pure overhead.
  void send(NodeId to, Message m) {
    CHS_DCHECK(engine_->graph_.has_edge(self_, to) || to == self_);
    acts_->sends.push_back({self_idx_, engine_->graph_.index_of(to),
                            std::move(m)});
  }

  /// Deliver a message to self after `delay` rounds (>= 1). Used to pace
  /// multi-guest-level wave processing inside one host (DESIGN.md D2).
  void hold(Message m, std::uint64_t delay) {
    CHS_CHECK(delay >= 1);
    acts_->holds.push_back({self_idx_, round_ + delay, std::move(m)});
  }

  /// Ask to be stepped again in `delay` rounds (>= 1) even if no message
  /// arrives. Active-set protocols must call this for every spontaneous
  /// (timer- or deadline-driven) action; it is a no-op signal otherwise —
  /// never an action, never delivers a message.
  void request_wakeup(std::uint64_t delay) {
    CHS_CHECK(delay >= 1);
    acts_->wakeups.push_back({self_idx_, round_ + delay});
  }

  /// Connect two of this node's current neighbors by a new logical edge.
  /// Validated here, against the start-of-round topology the step is
  /// reading anyway; the request itself is applied between rounds.
  void introduce(NodeId a, NodeId b, const char* site = "?") {
    CHS_CHECK_MSG(a != b, "introduce(a, a)");
    const bool a_ok = a == self_ || engine_->graph_.has_edge(self_, a);
    const bool b_ok = b == self_ || engine_->graph_.has_edge(self_, b);
    if (!(a_ok && b_ok)) {
      std::fprintf(stderr,
                   "introduce of non-neighbors: self=%llu a=%llu(%d) "
                   "b=%llu(%d) round=%llu site=%s\n",
                   static_cast<unsigned long long>(self_),
                   static_cast<unsigned long long>(a), int(a_ok),
                   static_cast<unsigned long long>(b), int(b_ok),
                   static_cast<unsigned long long>(round_), site);
      CHS_CHECK_MSG(false, "introduce of non-neighbors");
    }
    acts_->introduces.push_back({a, b});
  }

  /// Delete the edge between self and v. The edge may already have been
  /// deleted by the other endpoint in an earlier round; the request is then
  /// a no-op at apply time.
  /// `witness` (optional) names a node w such that the caller's views
  /// showed the path self-w-v; the engine validates that path still exists
  /// when the deferred delete is applied and drops the delete otherwise
  /// (see ActionBuffer::EdgeDel::witness).
  void disconnect(NodeId v, const char* site = "?",
                  NodeId witness = kNoWitness) {
    acts_->disconnects.push_back({self_, v, site, witness});
  }

  /// Debug: who last requested deletion of edge (self, v), if recorded.
  /// Requires Engine::set_edge_delete_tracing(true).
  const char* last_delete_site(NodeId v) const {
    return engine_->last_delete_site(self_, v);
  }

 private:
  friend class Engine<P>;
  NodeId self_ = 0;
  NodeIndex self_idx_ = 0;
  std::uint64_t round_ = 0;
  NodeState* state_ = nullptr;
  util::Rng* rng_ = nullptr;
  std::span<const Envelope<Message>> inbox_;
  const std::vector<NodeId>* neighbors_ = nullptr;
  Engine<P>* engine_ = nullptr;
  ActionBuffer<Message>* acts_ = nullptr;
  mutable NodeId view_cache_id_ = ~NodeId{0};
  mutable SnapshotView view_cache_{};
};

template <typename P>
class Engine {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;
  using Store = detail::snapshot_store_t<P>;

  Engine(graph::Graph g, P protocol, std::uint64_t seed)
      : graph_(std::move(g)), protocol_(std::move(protocol)), root_rng_(seed) {
    const std::size_t n = graph_.size();
    states_.resize(n);
    store_.init(n);
    mail_.init(n);
    woken_mark_.assign(n, 0);
    dirty_mark_.assign(n, 0);
    ckpt_dirty_mark_.assign(n, 0);
    rngs_.reserve(n);
    delay_rngs_.reserve(n);
    slots_.resize(1);
    if constexpr (detail::protocol_uses_active_set<P>()) {
      step_mode_ = StepMode::kActiveSet;
    }
    for (NodeIndex i = 0; i < n; ++i) {
      rngs_.push_back(root_rng_.split(graph_.id_of(i)));
      protocol_.init_node(graph_.id_of(i), states_[i], rngs_[i]);
    }
    // Per-sender message-delay streams (DESIGN.md D6): splitting by a salted
    // id keeps them independent of the per-node protocol streams above and
    // of each other, and — unlike the old draw from the shared root RNG in
    // global send order — independent of every other node's send count.
    for (NodeIndex i = 0; i < n; ++i) {
      delay_rngs_.push_back(root_rng_.split(graph_.id_of(i) ^ kDelayStreamSalt));
    }
    republish();
    metrics_.observe_initial(graph_);
  }

  const graph::Graph& graph() const { return graph_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  std::uint64_t round() const { return round_; }
  RunMetrics& metrics() { return metrics_; }
  const RunMetrics& metrics() const { return metrics_; }

  StepMode step_mode() const { return step_mode_; }

  /// Force a step mode. Switching to kActiveSet re-activates every node so
  /// protocols (re)establish their wakeup schedules.
  void set_step_mode(StepMode mode) {
    step_mode_ = mode;
    if (mode == StepMode::kActiveSet) wake_all();
  }

  /// Deterministic parallel rounds (DESIGN.md D6): step and publish with k
  /// workers (k - 1 pool threads plus the calling thread). Traces are
  /// bit-for-bit identical at every k; the knob trades wall clock only.
  /// Protocol::step must not mutate protocol members or any state other
  /// than its own NodeCtx (the engine contract already demands this for
  /// order-independence; parallelism additionally outlaws hidden caches).
  void set_worker_threads(std::size_t k) {
    CHS_CHECK(k >= 1);
    worker_threads_ = k;
    pool_.resize(k - 1);
    if (slots_.size() < k) slots_.resize(k);
  }
  std::size_t worker_threads() const { return worker_threads_; }

  /// Idle fast-forward: when nothing is active and nothing is due, jump
  /// round_ straight to the next scheduled calendar event instead of
  /// iterating empty rounds. Round numbering, metrics, and traces are
  /// preserved exactly; what changes is that one step_round() call may
  /// advance round() by more than one. Off by default because harnesses
  /// that call step_round() a fixed number of times rely on one call
  /// advancing exactly one round.
  void set_idle_fast_forward(bool on) { idle_fast_forward_ = on; }
  bool idle_fast_forward() const { return idle_fast_forward_; }

  const NodeState& state(NodeId id) const { return states_[graph_.index_of(id)]; }

  /// Mutable state access for fault injection and harness glue. Marks the
  /// node dirty (its snapshot republishes at the end of the next round) and
  /// active (it will be stepped), so external mutation is never missed by
  /// the active-set loop.
  NodeState& state_mut(NodeId id) {
    const NodeIndex i = graph_.index_of(id);
    mark_dirty(i);
    wake(i);
    return states_[i];
  }

  /// Refresh every public snapshot and re-activate every node; the
  /// full-strength fallback after arbitrary external mutation.
  void republish() {
    for (NodeIndex i = 0; i < graph_.size(); ++i) {
      store_.publish_now(protocol_, states_[i], i);
    }
    metrics_.count_snapshots(graph_.size());
    wake_all();
  }

  /// Targeted refresh after mutating a single node's state: publish its
  /// snapshot immediately (visible to neighbor views next round) and
  /// re-activate it plus its neighbors. Equivalent to republish() when no
  /// other node's state changed, without the O(n) sweep.
  void republish(NodeId id) {
    const NodeIndex i = graph_.index_of(id);
    store_.publish_now(protocol_, states_[i], i);
    metrics_.count_snapshots(1);
    wake(i);
    for (NodeId nb : graph_.neighbors(id)) wake(graph_.index_of(nb));
  }

  /// Direct topology mutation for fault injection; bypasses overlay rules.
  /// Both endpoints are re-activated so they observe the delta.
  bool inject_edge(NodeId u, NodeId v) {
    if (!graph_.add_edge(u, v)) return false;
    topo_changed_ = ckpt_topo_changed_ = true;
    wake(graph_.index_of(u));
    wake(graph_.index_of(v));
    record_delta(u, v, false);
    return true;
  }
  bool inject_edge_removal(NodeId u, NodeId v) {
    if (!graph_.remove_edge(u, v)) return false;
    topo_changed_ = ckpt_topo_changed_ = true;
    wake(graph_.index_of(u));
    wake(graph_.index_of(v));
    record_delta(u, v, true);
    return true;
  }

  /// Asynchrony model (§7 future work): each message is delayed uniformly
  /// in [1, d] rounds instead of exactly 1. Channels stay reliable and
  /// FIFO-per-round; protocol budgets should be scaled via
  /// Params::delay_slack to match. Delays are drawn from the per-sender
  /// streams at apply time, so traces do not depend on worker count.
  void set_max_message_delay(std::uint32_t d) {
    CHS_CHECK(d >= 1);
    max_delay_ = d;
  }

  /// Per-round delivery filter (DESIGN.md D7): fault-injection hook for
  /// message loss and network partitions. When installed, it is consulted
  /// once per network delivery due this round — return false to drop the
  /// message. Self-deliveries (from == to) never cross the network and are
  /// exempt; held self-messages (NodeCtx::hold) are intra-host and likewise
  /// never filtered.
  ///
  /// Threading contract: the filter runs on the engine's calling thread
  /// during the serial release phase, *before* the round's parallel step
  /// phase, in calendar drain order (deterministic). It may therefore keep
  /// unsynchronized state (e.g. an RNG stream for probabilistic loss) and
  /// still yield bit-for-bit identical traces at any set_worker_threads(k).
  using DeliveryFilter =
      std::function<bool(NodeId from, NodeId to, std::uint64_t round)>;
  void set_delivery_filter(DeliveryFilter f) {
    delivery_filter_ = std::move(f);
  }
  bool has_delivery_filter() const {
    return static_cast<bool>(delivery_filter_);
  }

  /// Per-edge message-delay sampler (DESIGN.md D11): replaces the default
  /// uniform-[1, d] law with an arbitrary distribution over the same
  /// per-sender RNG streams. The sampler runs in the serial apply phase
  /// (after the D6 shard merge, in ascending shard order), sees the
  /// sender's own delay stream, and must return a value in [1, d]; because
  /// each sender's draws still happen in the sequential action order,
  /// traces stay bit-identical at any worker count. Like the delivery
  /// filter, this is process-level configuration — not engine state — and
  /// is neither saved by checkpoint() nor touched by restore().
  using DelaySampler = std::function<std::uint64_t(
      NodeId from, NodeId to, std::uint32_t max_delay, util::Rng& rng)>;
  void set_delay_sampler(DelaySampler f) { delay_sampler_ = std::move(f); }
  bool has_delay_sampler() const { return static_cast<bool>(delay_sampler_); }

  /// End-of-round observer (verification hook — see src/verify/). When
  /// installed, it is invoked exactly once per executed round, after the
  /// publish phase, with the round number, the indices of every node whose
  /// state may have changed since the previous observation (stepped this
  /// round or externally mutated via state_mut — ascending order), and
  /// every topology mutation applied since the previous observation
  /// (protocol edge actions and external inject_edge / inject_edge_removal
  /// alike). Rounds skipped by the idle fast-forward are provably empty and
  /// are not observed individually.
  ///
  /// Threading contract: like the delivery filter, the observer runs on the
  /// engine's calling thread in a serial phase — after the D6 shard merge —
  /// so it may keep unsynchronized state and reads are bit-for-bit
  /// reproducible at any set_worker_threads(k). When no observer is
  /// installed the engine records nothing: the hook costs one branch per
  /// round and per applied edge mutation.
  using RoundObserver = std::function<void(
      std::uint64_t round, std::span<const NodeIndex> dirty,
      std::span<const EdgeDelta> edge_deltas)>;
  void set_round_observer(RoundObserver f) {
    round_observer_ = std::move(f);
    if (!round_observer_) observed_deltas_.clear();
  }
  bool has_round_observer() const {
    return static_cast<bool>(round_observer_);
  }

  /// Compose a second observer behind whatever is already installed
  /// (observability hook — see src/obs/). The engine keeps a single
  /// observer slot; chaining wraps the current one so both run, previous
  /// first, in the same serial phase with the same spans. set_round_observer
  /// replaces the whole chain — callers that chain (e.g. the flight
  /// recorder) must install *after* any set_round_observer owner (e.g. the
  /// oracle) and accept that the owner's teardown removes the chain too.
  void chain_round_observer(RoundObserver f) {
    if (!f) return;
    if (!round_observer_) {
      round_observer_ = std::move(f);
      return;
    }
    round_observer_ = [prev = std::move(round_observer_), next = std::move(f)](
                          std::uint64_t round,
                          std::span<const NodeIndex> dirty,
                          std::span<const EdgeDelta> deltas) {
      prev(round, dirty, deltas);
      next(round, dirty, deltas);
    };
  }

  /// Arm wall-clock phase profiling (sim/profile.hpp): every subsequent
  /// step_round charges per-phase nanoseconds into *p. Like the worker-count
  /// knob this is process configuration, not simulation state — it is never
  /// checkpointed and has zero effect on traces, metrics, or report bytes.
  /// Pass nullptr to disarm (the default costs one branch per phase).
  void set_profiler(RoundProfile* p) { profile_ = p; }

  /// Record which protocol site requested each applied edge deletion
  /// (ctx.last_delete_site). Off by default: the record grows with every
  /// deletion ever applied, which is unbounded under churn.
  void set_edge_delete_tracing(bool on) {
    edge_trace_ = on;
    if (!on) last_delete_.clear();
  }

  /// Execute one synchronous round (or, with idle fast-forward enabled,
  /// one active round preceded by any number of provably empty ones).
  void step_round() {
    PhaseTimer prof(profile_);
    round_actions_ = 0;
    if (idle_fast_forward_ && step_mode_ == StepMode::kActiveSet &&
        woken_.empty()) {
      fast_forward_idle_gap();
    }
    mail_.begin_round();

    // --- release: wakeups, then held self-messages, then delayed sends.
    // Holds-before-sends reproduces the seed's per-node inbox order.
    wakeups_.drain_due(round_, [&](NodeIndex i) { wake(i); });
    holds_.drain_due(round_, [&](HoldEvent&& h) {
      wake(h.to);
      mail_.deliver(h.to, Envelope<Message>{graph_.id_of(h.to), std::move(h.msg)});
    });
    delayed_.drain_due(round_, [&](SendEvent&& s) {
      if (delivery_filter_) {
        const NodeId to_id = graph_.id_of(s.to);
        if (s.env.from != to_id &&
            !delivery_filter_(s.env.from, to_id, round_)) {
          metrics_.count_message_dropped();
          return;  // dropped: no delivery, and the recipient is not woken
        }
      }
      wake(s.to);
      mail_.deliver(s.to, std::move(s.env));
    });

    // --- select this round's step set (ascending index order: scheduling
    // order inside the calendars, and thus determinism, depends on it).
    stepped_.clear();
    if (step_mode_ == StepMode::kAll) {
      for (NodeIndex i = 0; i < graph_.size(); ++i) stepped_.push_back(i);
      for (NodeIndex i : woken_) woken_mark_[i] = 0;
      woken_.clear();
    } else {
      stepped_.swap(woken_);
      for (NodeIndex i : stepped_) woken_mark_[i] = 0;
      std::sort(stepped_.begin(), stepped_.end());
    }

    // --- step against the start-of-round topology and snapshots, sharded
    // across the worker pool. Each shard is a contiguous slice of stepped_
    // and fills its own ActionBuffer; nothing engine-owned mutates until
    // the deterministic merge below. The single-shard case runs inline —
    // no dispatch, no std::function — so the quiescent round stays as
    // cheap as PR 1 left it.
    prof.lap(RoundPhase::kScan);
    if (!stepped_.empty()) {
      const std::size_t shards = shard_count(stepped_.size());
      if (shards == 1) {
        ActionBuffer<Message>& buf = slots_[0].acts;
        for (NodeIndex i : stepped_) step_node(i, buf);
        prof.lap(RoundPhase::kStep);
        apply_actions(buf);
      } else {
        pool_.run(shards, [&](std::size_t s) {
          const auto [b, e] = shard_range(stepped_.size(), shards, s);
          ActionBuffer<Message>& buf = slots_[s].acts;
          for (std::size_t k = b; k < e; ++k) step_node(stepped_[k], buf);
        });
        prof.lap(RoundPhase::kStep);
        // Merge in shard order == ascending node-index order == the exact
        // order the sequential engine applied actions in.
        for (std::size_t s = 0; s < shards; ++s) apply_actions(slots_[s].acts);
      }
    } else {
      prof.lap(RoundPhase::kStep);
    }

    // --- apply deferred edge mutations (deletes first, so an introduce in
    // the same round re-creates deliberately).
    for (std::size_t di = 0; di < pending_deletes_.size(); ++di) {
      const auto& [u, v] = pending_deletes_[di];
      // Commit-time certificate validation: the deleter promised the path
      // u-w-v as the reason (u, v) is safe to drop. Deletes are deferred a
      // whole round, so a concurrent external removal (churn, fault) or an
      // earlier delete in this very batch may have severed that path; the
      // batch applies sequentially, so each check sees all prior deletes.
      // A dropped delete is not lost work — the junk edge survives one more
      // round and the owner re-certifies against fresh views. Both endpoints
      // are re-activated exactly as if the delete had committed: in
      // active-set mode nothing else would re-step the owner (its state did
      // not change), and the junk edge would linger until an unrelated
      // wakeup — breaking the D5 kAll/kActiveSet trace equivalence.
      if (const NodeId w = pending_delete_witnesses_[di]; w != kNoWitness) {
        if (!graph_.has_edge(u, w) || !graph_.has_edge(w, v)) {
          metrics_.count_stale_cert_drop();
          wake(graph_.index_of(u));
          wake(graph_.index_of(v));
          continue;
        }
      }
      if (graph_.remove_edge(u, v)) {
        metrics_.count_edge_del();
        topo_changed_ = ckpt_topo_changed_ = true;
        wake(graph_.index_of(u));
        wake(graph_.index_of(v));
        record_delta(u, v, true);
        if (edge_trace_) record_delete_site(u, v, pending_delete_sites_[di]);
      }
    }
    pending_delete_sites_.clear();
    pending_delete_witnesses_.clear();
    for (const auto& [u, v] : pending_adds_) {
      if (graph_.add_edge(u, v)) {
        metrics_.count_edge_add();
        topo_changed_ = ckpt_topo_changed_ = true;
        wake(graph_.index_of(u));
        wake(graph_.index_of(v));
        record_delta(u, v, false);
      }
    }
    pending_deletes_.clear();
    pending_adds_.clear();
    prof.lap(RoundPhase::kApply);

    // --- dirty-snapshot publish: only nodes whose state may have changed
    // (stepped this round, or externally mutated via state_mut). Sharded
    // like the step phase; per-shard wake lists are merged in shard order,
    // which again equals the sequential engine's order.
    for (NodeIndex i : stepped_) mark_dirty(i);
    std::sort(dirty_.begin(), dirty_.end());
    if (!dirty_.empty()) {
      const std::size_t shards = shard_count(dirty_.size());
      store_.begin_publish(shards);
      const auto publish_range = [&](std::size_t b, std::size_t e,
                                     std::size_t s) {
        WorkerSlot& slot = slots_[s];
        for (std::size_t k = b; k < e; ++k) {
          const NodeIndex i = dirty_[k];
          dirty_mark_[i] = 0;
          if (step_mode_ == StepMode::kActiveSet) {
            publish_and_collect(i, slot, s);
          } else {
            store_.publish(protocol_, states_[i], i, s);
          }
        }
      };
      if (shards == 1) {
        publish_range(0, dirty_.size(), 0);
      } else {
        pool_.run(shards, [&](std::size_t s) {
          const auto [b, e] = shard_range(dirty_.size(), shards, s);
          publish_range(b, e, s);
        });
      }
      for (std::size_t s = 0; s < shards; ++s) {
        for (NodeIndex i : slots_[s].wake) wake(i);
        slots_[s].wake.clear();
      }
      store_.finish_publish();
      metrics_.count_snapshots(dirty_.size());
      // dirty_ is cleared at the end of the round (the marks are already
      // zeroed above): the round observer reads it first.
    }

    const std::uint64_t deliveries = mail_.delivered_this_round();
    mail_.end_round();
    prof.lap(RoundPhase::kPublish);

    metrics_.observe_round(graph_, round_actions_, stepped_.size(),
                           topo_changed_);
    metrics_.observe_scheduler(pending_events(), peak_bucket_occupancy());
    if (round_observer_) {
      round_observer_(round_, std::span<const NodeIndex>(dirty_),
                      std::span<const EdgeDelta>(observed_deltas_));
      observed_deltas_.clear();
    }
    // Fold this round's dirty set into the incremental-checkpoint touched
    // set (DESIGN.md D10) before it is cleared. Stepped nodes are a subset
    // of dirty_, so this also covers every per-node RNG advance: protocol
    // streams draw only inside step(), delay streams only for senders, and
    // both imply the node stepped — and was marked dirty — this round.
    for (NodeIndex i : dirty_) ckpt_mark(i);
    dirty_.clear();
    topo_changed_ = false;
    if (round_actions_ == 0 && deliveries == 0 && !holds_pending()) {
      ++quiescent_streak_;
    } else {
      quiescent_streak_ = 0;
    }
    prof.lap(RoundPhase::kObserver);
    prof.finish();
    ++round_;
  }

  /// Debug: which protocol site last requested deletion of edge {a, b}
  /// (requires set_edge_delete_tracing). Public so diagnostic harnesses and
  /// the verification layer can attribute a missing edge without a NodeCtx.
  const char* last_delete_site(NodeId a, NodeId b) {
    if (!edge_trace_) return "(untracked)";
    auto it = last_delete_.find(std::minmax(a, b));
    return it == last_delete_.end() ? "(none)" : it->second;
  }

  /// Consecutive fully-silent rounds (no deliveries, holds, or actions).
  std::uint64_t quiescent_streak() const { return quiescent_streak_; }

  /// Nodes stepped in the most recent round (n in StepMode::kAll).
  std::size_t last_stepped() const { return stepped_.size(); }

  /// Events (deliveries + holds + wakeups) currently scheduled.
  std::size_t pending_events() const {
    return delayed_.size() + holds_.size() + wakeups_.size();
  }

  /// Held self-messages currently scheduled (D2 pacing); the persist tests
  /// use this to pin checkpoints that land on a pending multi-round hold.
  std::size_t pending_holds() const { return holds_.size(); }

  std::size_t peak_bucket_occupancy() const {
    return std::max({delayed_.peak_bucket_occupancy(),
                     holds_.peak_bucket_occupancy(),
                     wakeups_.peak_bucket_occupancy()});
  }

  /// Run until `done(*this)` holds or max_rounds elapse. Returns the number
  /// of rounds executed and whether the predicate was satisfied.
  template <typename Pred>
  std::pair<std::uint64_t, bool> run_until(Pred&& done, std::uint64_t max_rounds) {
    const std::uint64_t start = round_;
    while (round_ - start < max_rounds) {
      if (done(*this)) return {round_ - start, true};
      step_round();
    }
    return {round_ - start, done(*this)};
  }

  // --- checkpoint / deterministic resume (DESIGN.md D9) ---------------------

  /// Serialize the complete dynamic simulation state: round counter, the
  /// three calendars (due rounds and FIFO order verbatim), mailbox arenas,
  /// topology, every per-node protocol and delay RNG stream, node states and
  /// public snapshots, the active set, and RunMetrics. A run restored from
  /// this blob continues with traces, metrics, and derived report bytes
  /// bit-for-bit identical to the uninterrupted run, at any worker count.
  ///
  /// Must be called between rounds (outside step_round). Wall-clock and
  /// debug configuration — worker threads, idle fast-forward, delivery
  /// filter, round observer, edge-delete tracing — is deliberately *not*
  /// state and is neither saved nor touched by restore: it belongs to the
  /// process hosting the run, not to the run.
  ///
  /// If the protocol declares `persist_fields(A&)`, its between-round
  /// dynamic knobs (e.g. the stabilizer's frozen flag) ride along; protocol
  /// *configuration* (Params, target) is the caller's job — restore onto an
  /// engine rebuilt with the same recipe.
  void checkpoint(persist::Writer& w) {
    CHS_CHECK_MSG(pending_adds_.empty() && pending_deletes_.empty(),
                  "checkpoint must be taken between rounds");
    w.begin_section(persist::tag4("GRPH"));
    w(graph_);
    w.end_section();
    w.begin_section(persist::tag4("ENGN"));
    w(round_);
    w(round_actions_);
    w(quiescent_streak_);
    w(step_mode_);
    w(max_delay_);
    w(root_rng_);
    w(rngs_);
    w(delay_rngs_);
    w(woken_);
    w(stepped_);
    w(dirty_);
    w.end_section();
    w.begin_section(persist::tag4("CALS"));
    w(delayed_);
    w(holds_);
    w(wakeups_);
    w.end_section();
    w.begin_section(persist::tag4("MAIL"));
    w(mail_);
    w.end_section();
    w.begin_section(persist::tag4("STAT"));
    w(states_);
    w.end_section();
    w.begin_section(persist::tag4("PUBS"));
    store_.save(w);  // canonical per-node layout, store-independent
    w.end_section();
    w.begin_section(persist::tag4("METR"));
    w(metrics_);
    w.end_section();
    w.begin_section(persist::tag4("PROT"));
    if constexpr (requires(persist::Writer& a) { protocol_.persist_fields(a); }) {
      w(protocol_);
    }
    w.end_section();
  }

  /// Restore a checkpoint taken by checkpoint() onto this engine. The
  /// engine must have been built with the same recipe (same host-id set and
  /// protocol configuration); everything dynamic is overwritten wholesale —
  /// including the public snapshots, so no republish (which would wake every
  /// node and perturb the active set) happens.
  ///
  /// All section CRCs are verified before any member mutates; corrupt,
  /// truncated, or stale blobs return a failed Status naming the problem and
  /// leave the engine untouched. The caller owns the header: a typical
  /// sequence is `Reader r(bytes); r.expect_header(BlobKind::kEngine);
  /// eng.restore(r);`.
  persist::Status restore(persist::Reader& r) {
    if (auto s = r.validate_sections(); !s.ok) return s;

    graph::Graph g;
    if (auto s = r.open_section(persist::tag4("GRPH")); !s.ok) return s;
    r(g);
    if (auto s = r.close_section(); !s.ok) return s;
    if (g.ids() != graph_.ids()) {
      return persist::Status::failure(
          "checkpoint host set does not match this engine");
    }
    const std::size_t n = graph_.size();

    std::uint64_t round = 0, round_actions = 0, quiescent_streak = 0;
    StepMode step_mode = StepMode::kAll;
    std::uint32_t max_delay = 1;
    util::Rng root_rng;
    std::vector<util::Rng> rngs, delay_rngs;
    std::vector<NodeIndex> woken, stepped, dirty;
    if (auto s = r.open_section(persist::tag4("ENGN")); !s.ok) return s;
    r(round);
    r(round_actions);
    r(quiescent_streak);
    r(step_mode);
    r(max_delay);
    r(root_rng);
    r(rngs);
    r(delay_rngs);
    r(woken);
    r(stepped);
    r(dirty);
    if (auto s = r.close_section(); !s.ok) return s;

    CalendarQueue<SendEvent> delayed;
    CalendarQueue<HoldEvent> holds;
    CalendarQueue<NodeIndex> wakeups;
    if (auto s = r.open_section(persist::tag4("CALS")); !s.ok) return s;
    r(delayed);
    r(holds);
    r(wakeups);
    if (auto s = r.close_section(); !s.ok) return s;

    MailboxPool<Message> mail;
    if (auto s = r.open_section(persist::tag4("MAIL")); !s.ok) return s;
    r(mail);
    if (auto s = r.close_section(); !s.ok) return s;

    std::vector<NodeState> states;
    if (auto s = r.open_section(persist::tag4("STAT")); !s.ok) return s;
    r(states);
    if (auto s = r.close_section(); !s.ok) return s;

    std::vector<PublicState> publics;
    if (auto s = r.open_section(persist::tag4("PUBS")); !s.ok) return s;
    r(publics);
    if (auto s = r.close_section(); !s.ok) return s;

    RunMetrics metrics;
    if (auto s = r.open_section(persist::tag4("METR")); !s.ok) return s;
    r(metrics);
    if (auto s = r.close_section(); !s.ok) return s;

    if (!r.ok()) return r.status();
    if (rngs.size() != n || delay_rngs.size() != n || states.size() != n ||
        publics.size() != n) {
      return persist::Status::failure("checkpoint node-count mismatch");
    }
    // Every restored node index must be in range before commit: the CRCs
    // reject corruption, but a stale blob with a valid checksum must fail
    // with a Status here, not index out of bounds in the next round.
    bool indices_ok = true;
    for (const auto* idxs : {&woken, &stepped, &dirty}) {
      for (NodeIndex i : *idxs) indices_ok &= i < n;
    }
    delayed.for_each_event([&](const SendEvent& e) { indices_ok &= e.to < n; });
    holds.for_each_event([&](const HoldEvent& e) { indices_ok &= e.to < n; });
    wakeups.for_each_event([&](const NodeIndex& i) { indices_ok &= i < n; });
    if (!indices_ok) {
      return persist::Status::failure("node index out of range");
    }
    if (!mail.consistent_for(n)) {
      return persist::Status::failure("mailbox arena inconsistent");
    }

    // Protocol dynamic knobs: staged in a copy when the protocol type
    // allows it, so a layout mismatch in this last section cannot leave
    // half-read knobs behind on an otherwise-untouched engine.
    std::optional<P> staged_protocol;
    if (auto s = r.open_section(persist::tag4("PROT")); !s.ok) return s;
    if constexpr (requires(persist::Reader& a) { protocol_.persist_fields(a); }) {
      if constexpr (std::copy_constructible<P> &&
                    std::is_copy_assignable_v<P>) {
        staged_protocol.emplace(protocol_);
        r(*staged_protocol);
      } else {
        r(protocol_);  // non-copyable protocol: reads in place
      }
    }
    if (auto s = r.close_section(); !s.ok) return s;
    if (!r.ok()) return r.status();

    // --- commit -------------------------------------------------------------
    if (staged_protocol) protocol_ = std::move(*staged_protocol);
    graph_ = std::move(g);
    round_ = round;
    round_actions_ = round_actions;
    quiescent_streak_ = quiescent_streak;
    step_mode_ = step_mode;
    max_delay_ = max_delay;
    root_rng_ = root_rng;
    rngs_ = std::move(rngs);
    delay_rngs_ = std::move(delay_rngs);
    woken_ = std::move(woken);
    stepped_ = std::move(stepped);
    dirty_ = std::move(dirty);
    delayed_ = std::move(delayed);
    holds_ = std::move(holds);
    wakeups_ = std::move(wakeups);
    mail_ = std::move(mail);
    states_ = std::move(states);
    store_.init(n);
    for (NodeIndex i = 0; i < n; ++i) store_.store(i, publics[i]);
    metrics_ = std::move(metrics);
    woken_mark_.assign(n, 0);
    for (NodeIndex i : woken_) woken_mark_[i] = 1;
    dirty_mark_.assign(n, 0);
    for (NodeIndex i : dirty_) dirty_mark_[i] = 1;
    topo_changed_ = false;
    pending_adds_.clear();
    pending_deletes_.clear();
    pending_delete_sites_.clear();
    pending_delete_witnesses_.clear();
    observed_deltas_.clear();
    // The blob this reader came from is unknown here, so the incremental
    // chain is broken: restore_blob() re-establishes it from the bytes.
    ckpt_dirty_mark_.assign(n, 0);
    ckpt_dirty_.clear();
    ckpt_topo_changed_ = false;
    last_ckpt_hash_ = 0;
    has_ckpt_base_ = false;
    // Derived per-node caches (e.g. the stabilizer's fragment geometry) are
    // recomputed rather than serialized: they are pure functions of the
    // restored state, and recomputation cannot drift from it.
    if constexpr (requires(NodeState& st) { protocol_.on_restore(st); }) {
      for (NodeState& st : states_) protocol_.on_restore(st);
    }
    return {};
  }

  // --- incremental checkpoints (DESIGN.md D10) ------------------------------
  //
  // A delta blob serializes only what can have changed since the last blob
  // in this engine's chain: the touched node set (states, RNG streams, and
  // canonical snapshots of nodes stepped or externally mutated since), the
  // topology only if it mutated, and the always-small sections (scalars,
  // calendars, metrics, protocol knobs) in full. Each delta records the
  // content hash of its parent blob; restore verifies the hash, so a delta
  // applied against the wrong base — or out of order — fails loudly.
  //
  // Chain discipline: the *_blob helpers below maintain the chain head. A
  // delta must be applied to an engine whose state exactly equals its
  // parent blob's state (the normal flow: fresh engine, restore_blob(base),
  // then restore_delta_blob for each delta in order). The raw Writer/Reader
  // variants exist for embedding; they deliberately break the chain on the
  // restore side because the blob's bytes (and hash) are unknown to them.

  /// True once this engine has a chain head to extend with deltas.
  bool has_checkpoint_base() const { return has_ckpt_base_; }

  /// Full checkpoint as a self-contained kEngine blob; becomes the chain
  /// head (deltas taken afterwards extend it).
  std::vector<std::uint8_t> checkpoint_blob() {
    persist::Writer w(persist::BlobKind::kEngine);
    checkpoint(w);
    std::vector<std::uint8_t> bytes = w.take();
    note_ckpt_chain(bytes);
    return bytes;
  }

  /// Incremental checkpoint as a kEngineDelta blob extending the current
  /// chain head; becomes the new head. Requires a prior checkpoint_blob()
  /// or restore_blob() on this engine.
  std::vector<std::uint8_t> checkpoint_delta_blob() {
    CHS_CHECK_MSG(has_ckpt_base_,
                  "delta checkpoint without a base blob in the chain");
    persist::Writer w(persist::BlobKind::kEngineDelta);
    checkpoint_delta(w);
    std::vector<std::uint8_t> bytes = w.take();
    note_ckpt_chain(bytes);
    return bytes;
  }

  /// Restore a full kEngine blob and make it the chain head.
  persist::Status restore_blob(const std::vector<std::uint8_t>& bytes) {
    persist::Reader r(bytes);
    if (auto s = r.expect_header(persist::BlobKind::kEngine); !s.ok) return s;
    if (auto s = restore(r); !s.ok) return s;
    if (auto s = r.expect_end(); !s.ok) return s;
    note_ckpt_chain(bytes);
    return {};
  }

  /// Apply a delta blob. The engine's state must equal the parent blob's
  /// state (enforced via the parent content hash against the chain head);
  /// on success the delta becomes the new head. Corrupt or mismatched blobs
  /// fail with a Status and leave the engine untouched.
  persist::Status restore_delta_blob(const std::vector<std::uint8_t>& bytes) {
    persist::Reader r(bytes);
    if (auto s = r.expect_header(persist::BlobKind::kEngineDelta); !s.ok) {
      return s;
    }
    if (auto s = restore_delta(r); !s.ok) return s;
    if (auto s = r.expect_end(); !s.ok) return s;
    note_ckpt_chain(bytes);
    return {};
  }

  /// Raw-writer delta checkpoint (see the chain discipline note above).
  void checkpoint_delta(persist::Writer& w) {
    CHS_CHECK_MSG(pending_adds_.empty() && pending_deletes_.empty(),
                  "checkpoint must be taken between rounds");
    // External mutations still awaiting their publish round (state_mut
    // between rounds) are part of the touched set too; dirty_ itself rides
    // in DENG so the pending publish replays after restore.
    for (NodeIndex i : dirty_) ckpt_mark(i);
    std::sort(ckpt_dirty_.begin(), ckpt_dirty_.end());

    w.begin_section(persist::tag4("DHDR"));
    w(last_ckpt_hash_);
    const std::uint64_t n = graph_.size();
    w(n);
    w.end_section();
    w.begin_section(persist::tag4("DENG"));
    w(round_);
    w(round_actions_);
    w(quiescent_streak_);
    w(step_mode_);
    w(max_delay_);
    w(root_rng_);
    w(woken_);
    w(stepped_);
    w(dirty_);
    w.end_section();
    w.begin_section(persist::tag4("DTOP"));
    w(ckpt_topo_changed_);
    if (ckpt_topo_changed_) w(graph_);
    w.end_section();
    w.begin_section(persist::tag4("DCAL"));
    w(delayed_);
    w(holds_);
    w(wakeups_);
    w.end_section();
    w.begin_section(persist::tag4("DMAI"));
    // Between rounds every box is empty (end_round is the single clear
    // point); only the last round's delivery count survives.
    w(mail_.delivered_this_round());
    w.end_section();
    w.begin_section(persist::tag4("DNOD"));
    const std::uint64_t touched = ckpt_dirty_.size();
    w(touched);
    PublicState tmp;
    for (NodeIndex i : ckpt_dirty_) {
      w(i);
      w(states_[i]);
      w(rngs_[i]);
      w(delay_rngs_[i]);
      store_.materialize(i, tmp);  // canonical form, store-independent
      w(tmp);
    }
    w.end_section();
    w.begin_section(persist::tag4("DMET"));
    w(metrics_);
    w.end_section();
    w.begin_section(persist::tag4("DPRO"));
    if constexpr (requires(persist::Writer& a) { protocol_.persist_fields(a); }) {
      w(protocol_);
    }
    w.end_section();
  }

  /// Raw-reader delta restore: fully staged, committed only after every
  /// section read and range check passes — a failure of any kind leaves the
  /// engine untouched. Breaks the chain head (the caller knows the bytes;
  /// restore_delta_blob re-establishes it).
  persist::Status restore_delta(persist::Reader& r) {
    if (!has_ckpt_base_) {
      return persist::Status::failure(
          "delta restore without a base checkpoint");
    }
    if (auto s = r.validate_sections(); !s.ok) return s;

    std::uint64_t parent = 0, n_in = 0;
    if (auto s = r.open_section(persist::tag4("DHDR")); !s.ok) return s;
    r(parent);
    r(n_in);
    if (auto s = r.close_section(); !s.ok) return s;
    if (r.ok() && parent != last_ckpt_hash_) {
      return persist::Status::failure(
          "delta parent hash mismatch: blob does not extend this engine's "
          "checkpoint chain");
    }
    const std::size_t n = graph_.size();
    if (r.ok() && n_in != n) {
      return persist::Status::failure("checkpoint node-count mismatch");
    }

    std::uint64_t round = 0, round_actions = 0, quiescent_streak = 0;
    StepMode step_mode = StepMode::kAll;
    std::uint32_t max_delay = 1;
    util::Rng root_rng;
    std::vector<NodeIndex> woken, stepped, dirty;
    if (auto s = r.open_section(persist::tag4("DENG")); !s.ok) return s;
    r(round);
    r(round_actions);
    r(quiescent_streak);
    r(step_mode);
    r(max_delay);
    r(root_rng);
    r(woken);
    r(stepped);
    r(dirty);
    if (auto s = r.close_section(); !s.ok) return s;

    bool topo = false;
    graph::Graph g;
    if (auto s = r.open_section(persist::tag4("DTOP")); !s.ok) return s;
    r(topo);
    if (topo) r(g);
    if (auto s = r.close_section(); !s.ok) return s;
    if (r.ok() && topo && g.ids() != graph_.ids()) {
      return persist::Status::failure(
          "checkpoint host set does not match this engine");
    }

    CalendarQueue<SendEvent> delayed;
    CalendarQueue<HoldEvent> holds;
    CalendarQueue<NodeIndex> wakeups;
    if (auto s = r.open_section(persist::tag4("DCAL")); !s.ok) return s;
    r(delayed);
    r(holds);
    r(wakeups);
    if (auto s = r.close_section(); !s.ok) return s;

    std::uint64_t delivered = 0;
    if (auto s = r.open_section(persist::tag4("DMAI")); !s.ok) return s;
    r(delivered);
    if (auto s = r.close_section(); !s.ok) return s;

    struct NodePatch {
      NodeIndex i = 0;
      NodeState st{};
      util::Rng rng, delay_rng;
      PublicState pub{};
    };
    std::vector<NodePatch> patches;
    if (auto s = r.open_section(persist::tag4("DNOD")); !s.ok) return s;
    std::uint64_t touched = 0;
    r(touched);
    for (std::uint64_t k = 0; k < touched && r.ok(); ++k) {
      patches.emplace_back();
      NodePatch& p = patches.back();
      r(p.i);
      r(p.st);
      r(p.rng);
      r(p.delay_rng);
      r(p.pub);
    }
    if (auto s = r.close_section(); !s.ok) return s;

    RunMetrics metrics;
    if (auto s = r.open_section(persist::tag4("DMET")); !s.ok) return s;
    r(metrics);
    if (auto s = r.close_section(); !s.ok) return s;

    std::optional<P> staged_protocol;
    if (auto s = r.open_section(persist::tag4("DPRO")); !s.ok) return s;
    if constexpr (requires(persist::Reader& a) { protocol_.persist_fields(a); }) {
      if constexpr (std::copy_constructible<P> &&
                    std::is_copy_assignable_v<P>) {
        staged_protocol.emplace(protocol_);
        r(*staged_protocol);
      } else {
        r(protocol_);  // non-copyable protocol: reads in place
      }
    }
    if (auto s = r.close_section(); !s.ok) return s;
    if (!r.ok()) return r.status();

    bool indices_ok = true;
    for (const auto* idxs : {&woken, &stepped, &dirty}) {
      for (NodeIndex i : *idxs) indices_ok &= i < n;
    }
    for (const NodePatch& p : patches) indices_ok &= p.i < n;
    delayed.for_each_event([&](const SendEvent& e) { indices_ok &= e.to < n; });
    holds.for_each_event([&](const HoldEvent& e) { indices_ok &= e.to < n; });
    wakeups.for_each_event([&](const NodeIndex& i) { indices_ok &= i < n; });
    if (!indices_ok) {
      return persist::Status::failure("node index out of range");
    }

    // --- commit -------------------------------------------------------------
    if (staged_protocol) protocol_ = std::move(*staged_protocol);
    if (topo) graph_ = std::move(g);
    round_ = round;
    round_actions_ = round_actions;
    quiescent_streak_ = quiescent_streak;
    step_mode_ = step_mode;
    max_delay_ = max_delay;
    root_rng_ = root_rng;
    woken_ = std::move(woken);
    stepped_ = std::move(stepped);
    dirty_ = std::move(dirty);
    delayed_ = std::move(delayed);
    holds_ = std::move(holds);
    wakeups_ = std::move(wakeups);
    mail_.reset_empty(n, delivered);
    for (NodePatch& p : patches) {
      states_[p.i] = std::move(p.st);
      rngs_[p.i] = p.rng;
      delay_rngs_[p.i] = p.delay_rng;
      store_.store(p.i, p.pub);
    }
    metrics_ = std::move(metrics);
    woken_mark_.assign(n, 0);
    for (NodeIndex i : woken_) woken_mark_[i] = 1;
    dirty_mark_.assign(n, 0);
    for (NodeIndex i : dirty_) dirty_mark_[i] = 1;
    topo_changed_ = false;
    pending_adds_.clear();
    pending_deletes_.clear();
    pending_delete_sites_.clear();
    pending_delete_witnesses_.clear();
    observed_deltas_.clear();
    clear_ckpt_tracking();
    has_ckpt_base_ = false;  // see restore_delta_blob
    last_ckpt_hash_ = 0;
    // Untouched nodes kept their state — and their derived caches — from the
    // parent restore; only the patched ones need the post-restore fixup.
    if constexpr (requires(NodeState& st) { protocol_.on_restore(st); }) {
      for (const NodePatch& p : patches) protocol_.on_restore(states_[p.i]);
    }
    return {};
  }

  // --- memory accounting (DESIGN.md D10) ------------------------------------

  /// Approximate resident bytes of the engine's dynamic structures: snapshot
  /// store, node states (plus their heap, when NodeState exposes
  /// live_bytes()), mailbox arenas, calendars, RNG streams, and the
  /// active/dirty bookkeeping. Capacities, not sizes — this measures what the
  /// process actually holds. O(n); call on demand, never per round.
  std::size_t approx_live_bytes() const {
    std::size_t b = store_.live_bytes() + mail_.live_bytes() +
                    delayed_.live_bytes() + holds_.live_bytes() +
                    wakeups_.live_bytes();
    b += states_.capacity() * sizeof(NodeState);
    if constexpr (requires(const NodeState& st) {
                    { st.live_bytes() } -> std::convertible_to<std::size_t>;
                  }) {
      for (const NodeState& st : states_) b += st.live_bytes();
    }
    b += (rngs_.capacity() + delay_rngs_.capacity()) * sizeof(util::Rng);
    b += (woken_.capacity() + stepped_.capacity() + dirty_.capacity() +
          ckpt_dirty_.capacity()) *
         sizeof(NodeIndex);
    b += woken_mark_.capacity() + dirty_mark_.capacity() +
         ckpt_dirty_mark_.capacity();
    return b;
  }

  /// Sample approx_live_bytes() into RunMetrics::bytes_per_host. Explicit
  /// call only (benchmarks, scale harnesses): capacities depend on the
  /// worker-thread knob, so automatic sampling would leak wall-clock
  /// configuration into checkpoint bytes.
  void record_live_bytes() {
    const std::size_t n = graph_.size();
    metrics_.set_bytes_per_host(n == 0 ? 0 : approx_live_bytes() / n);
  }

 private:
  friend class NodeCtx<P>;

  struct HoldEvent {
    NodeIndex to;
    Message msg;

    template <typename A>
    void persist_fields(A& a) {
      a(to);
      a(msg);
    }
  };
  struct SendEvent {
    NodeIndex to;
    Envelope<Message> env;

    template <typename A>
    void persist_fields(A& a) {
      a(to);
      a(env);
    }
  };
  /// Per-shard scratch for the parallel phases: the action buffer filled
  /// while stepping, the wake list collected while publishing, and the
  /// snapshot-comparison scratch.
  struct WorkerSlot {
    ActionBuffer<Message> acts;
    std::vector<NodeIndex> wake;
    PublicState scratch{};
  };

  // Salt for the per-sender delay streams; any constant far outside the
  // node-id space works (ids are < n_guests), it only has to keep the
  // streams disjoint from root_rng_.split(id).
  static constexpr std::uint64_t kDelayStreamSalt = 0xd31a'57f3'0b5e'9c11ULL;

  typename Store::View snapshot_view(NodeId v) const {
    return store_.view(graph_.index_of(v));
  }

  void wake(NodeIndex i) {
    if (!woken_mark_[i]) {
      woken_mark_[i] = 1;
      woken_.push_back(i);
    }
  }

  void wake_all() {
    for (NodeIndex i = 0; i < graph_.size(); ++i) wake(i);
  }

  void mark_dirty(NodeIndex i) {
    if (!dirty_mark_[i]) {
      dirty_mark_[i] = 1;
      dirty_.push_back(i);
    }
  }

  /// Accumulate node i into the set touched since the last checkpoint blob
  /// (full or delta) — the nodes a delta checkpoint must serialize.
  void ckpt_mark(NodeIndex i) {
    if (!ckpt_dirty_mark_[i]) {
      ckpt_dirty_mark_[i] = 1;
      ckpt_dirty_.push_back(i);
    }
  }

  /// Reset the incremental-checkpoint tracking (the engine's state now
  /// exactly matches the head of its blob chain — or the chain was broken).
  void clear_ckpt_tracking() {
    for (NodeIndex i : ckpt_dirty_) ckpt_dirty_mark_[i] = 0;
    ckpt_dirty_.clear();
    ckpt_topo_changed_ = false;
  }

  /// Record `bytes` as the new head of this engine's checkpoint chain: the
  /// next delta extends it, identified by content hash.
  void note_ckpt_chain(const std::vector<std::uint8_t>& bytes) {
    last_ckpt_hash_ = persist::content_hash(bytes);
    has_ckpt_base_ = true;
    clear_ckpt_tracking();
  }

  /// Number of shards for a parallel phase over `items` units. One shard
  /// (inline, no dispatch) unless the pool is populated and the phase is
  /// large enough to amortize a dispatch; never more than the worker count,
  /// so slots_ is indexable by shard.
  std::size_t shard_count(std::size_t items) const {
    if (worker_threads_ <= 1) return 1;
    const std::size_t by_grain = items / kParallelGrain;
    return std::max<std::size_t>(1, std::min(worker_threads_, by_grain));
  }
  // A shard of 16 protocol steps already dwarfs one pool dispatch; smaller
  // phases run inline (identical results — only the schedule differs).
  static constexpr std::size_t kParallelGrain = 16;

  /// Contiguous block partition of [0, n) into `shards` ranges.
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                         std::size_t shards,
                                                         std::size_t s) {
    const std::size_t base = n / shards;
    const std::size_t rem = n % shards;
    const std::size_t b = s * base + std::min(s, rem);
    return {b, b + base + (s < rem ? 1 : 0)};
  }

  void step_node(NodeIndex i, ActionBuffer<Message>& buf) {
    NodeCtx<P> ctx;
    ctx.self_ = graph_.id_of(i);
    ctx.self_idx_ = i;
    ctx.round_ = round_;
    ctx.state_ = &states_[i];
    ctx.rng_ = &rngs_[i];
    ctx.inbox_ = mail_.inbox(i);
    ctx.neighbors_ = &graph_.neighbors(ctx.self_);
    ctx.engine_ = this;
    ctx.acts_ = &buf;
    protocol_.step(ctx);
  }

  /// Serially apply one shard's buffered actions (the merge step). Within a
  /// buffer, entries of each kind are already in (node, call) order; shards
  /// cover ascending node ranges, so applying buffers in shard order feeds
  /// each calendar and mutation list in exactly the sequential order.
  void apply_actions(ActionBuffer<Message>& buf) {
    for (auto& s : buf.sends) {
      std::uint64_t delay;
      if (delay_sampler_) {
        delay = delay_sampler_(graph_.id_of(s.from), graph_.id_of(s.to),
                               max_delay_, delay_rngs_[s.from]);
        CHS_CHECK(delay >= 1 && delay <= max_delay_);
      } else {
        delay =
            max_delay_ == 1 ? 1 : 1 + delay_rngs_[s.from].next_below(max_delay_);
      }
      delayed_.schedule(round_ + delay,
                        SendEvent{s.to, Envelope<Message>{graph_.id_of(s.from),
                                                          std::move(s.msg)}});
      metrics_.count_message();
    }
    for (auto& h : buf.holds) {
      holds_.schedule(h.due, HoldEvent{h.self, std::move(h.msg)});
    }
    for (const auto& w : buf.wakeups) {
      // Bookkeeping only: not a protocol action, invisible to metrics and
      // to quiescence detection.
      wakeups_.schedule(w.due, w.self);
    }
    for (const auto& d : buf.disconnects) {
      pending_deletes_.emplace_back(d.a, d.b);
      pending_delete_sites_.push_back(d.site);
      pending_delete_witnesses_.push_back(d.witness);
    }
    for (const auto& a : buf.introduces) {
      pending_adds_.emplace_back(a.a, a.b);
    }
    round_actions_ += buf.actions();
    buf.clear();
  }

  /// Publish node i's snapshot via the store; if it changed, collect its
  /// neighbors into the shard's wake list (their next check_local / view
  /// reads see different data).
  void publish_and_collect(NodeIndex i, WorkerSlot& slot, std::size_t shard) {
    const bool changed =
        store_.publish_compare(protocol_, states_[i], i, slot.scratch, shard);
    if (changed) {
      for (NodeId nb : graph_.neighbors(graph_.id_of(i))) {
        slot.wake.push_back(graph_.index_of(nb));
      }
    }
  }

  /// Opt-in idle fast-forward: with no active nodes and no event due before
  /// round X, rounds round_ .. X-1 are provably empty — account for them in
  /// the metrics (identical entries to executing them) and jump. The
  /// subsequent code in step_round then runs the first non-empty round.
  void fast_forward_idle_gap() {
    std::uint64_t next = ~std::uint64_t{0};
    bool any = false;
    if (const auto d = delayed_.next_due_round()) {
      next = std::min(next, *d);
      any = true;
    }
    if (const auto d = holds_.next_due_round()) {
      next = std::min(next, *d);
      any = true;
    }
    if (const auto d = wakeups_.next_due_round()) {
      next = std::min(next, *d);
      any = true;
    }
    if (!any || next <= round_) return;  // nothing ever due, or due now
    const std::uint64_t skip = next - round_;
    metrics_.observe_idle_rounds(skip);
    // Each skipped round had zero actions and deliveries; the quiescence
    // streak grows through the gap unless deliverable events (holds or
    // delayed sends) were pending all along — exactly the per-round rule.
    if (holds_pending()) {
      quiescent_streak_ = 0;
    } else {
      quiescent_streak_ += skip;
    }
    round_ = next;
  }

  /// Accumulate an applied topology mutation for the round observer; a
  /// no-op (one predicted branch) when no observer is installed.
  void record_delta(NodeId u, NodeId v, bool removed) {
    if (round_observer_) observed_deltas_.push_back({u, v, removed});
  }

  void record_delete_site(NodeId u, NodeId v, const char* site) {
    // Bounded: long churn runs otherwise grow this map without limit.
    if (last_delete_.size() >= kMaxDeleteRecords) last_delete_.clear();
    last_delete_[std::minmax(u, v)] = site;
  }

  bool holds_pending() const { return !holds_.empty() || !delayed_.empty(); }

  static constexpr std::size_t kMaxDeleteRecords = 1u << 20;

  graph::Graph graph_;
  P protocol_;
  util::Rng root_rng_;
  std::vector<NodeState> states_;
  Store store_;  // public snapshots, behind the per-protocol store layout
  MailboxPool<Message> mail_;
  CalendarQueue<SendEvent> delayed_;
  CalendarQueue<HoldEvent> holds_;
  CalendarQueue<NodeIndex> wakeups_;
  std::vector<util::Rng> rngs_;
  std::vector<util::Rng> delay_rngs_;  // per-sender message-delay streams
  std::vector<std::pair<NodeId, NodeId>> pending_adds_;
  std::vector<std::pair<NodeId, NodeId>> pending_deletes_;
  std::vector<const char*> pending_delete_sites_;
  std::vector<NodeId> pending_delete_witnesses_;
  std::map<std::pair<NodeId, NodeId>, const char*> last_delete_;
  RunMetrics metrics_;
  DeliveryFilter delivery_filter_;  // empty = deliver everything
  DelaySampler delay_sampler_;      // empty = uniform [1, max_delay_]
  RoundObserver round_observer_;    // empty = observe nothing, record nothing
  RoundProfile* profile_ = nullptr;  // null = no wall-clock phase timing
  std::vector<EdgeDelta> observed_deltas_;  // mutations since last observation
  WorkerPool pool_;
  std::vector<WorkerSlot> slots_;
  std::size_t worker_threads_ = 1;
  StepMode step_mode_ = StepMode::kAll;
  bool edge_trace_ = false;
  bool topo_changed_ = false;
  bool idle_fast_forward_ = false;
  std::vector<NodeIndex> woken_;   // active set accumulating for next round
  std::vector<std::uint8_t> woken_mark_;
  std::vector<NodeIndex> stepped_;  // nodes stepped in the current round
  std::vector<NodeIndex> dirty_;    // snapshots to publish this round
  std::vector<std::uint8_t> dirty_mark_;
  // Incremental-checkpoint chain state (DESIGN.md D10): nodes touched since
  // the last blob, whether topology changed since it, and the content hash
  // identifying it (the parent of the next delta).
  std::vector<NodeIndex> ckpt_dirty_;
  std::vector<std::uint8_t> ckpt_dirty_mark_;
  bool ckpt_topo_changed_ = false;
  std::uint64_t last_ckpt_hash_ = 0;
  bool has_ckpt_base_ = false;
  std::uint32_t max_delay_ = 1;
  std::uint64_t round_ = 0;
  std::uint64_t round_actions_ = 0;
  std::uint64_t quiescent_streak_ = 0;
};

}  // namespace chs::sim
