// Synchronous message-passing overlay-network simulator (§2.1 of the paper).
//
// Computation proceeds in synchronous rounds. In round r each node
//   1. receives every message sent to it in round r-1,
//   2. reads the *previous-round* public state of each current neighbor
//      (the paper's "nodes exchange their local state" — see DESIGN.md D4),
//   3. executes protocol actions: mutate its own state, send messages to
//      current neighbors, and request edge mutations.
// Edge mutations follow the overlay model: a node may delete any incident
// edge, and may *introduce* two of its current neighbors to each other
// (creating the edge between them). All sends and mutations are validated
// against the topology as it stood at the start of the round and applied
// between rounds, so the round is atomic and order-independent.
//
// The engine is templated on a Protocol type providing:
//   struct Message;                          // copyable payload
//   struct NodeState;                        // full per-node state
//   struct PublicState;                      // the part neighbors can read
//   void init_node(NodeId, NodeState&, util::Rng&);
//   void publish(const NodeState&, PublicState&);
//   void step(NodeCtx<Protocol>&);           // one round for one node
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace chs::sim {

using graph::NodeId;
using graph::NodeIndex;

template <typename M>
struct Envelope {
  NodeId from;
  M msg;
};

template <typename P>
class Engine;

/// Per-node, per-round view handed to Protocol::step.
template <typename P>
class NodeCtx {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;

  NodeId self() const { return self_; }
  std::uint64_t round() const { return round_; }
  NodeState& state() { return *state_; }
  const NodeState& state() const { return *state_; }
  util::Rng& rng() { return *rng_; }

  /// Messages delivered this round (sent last round), sender order.
  std::span<const Envelope<Message>> inbox() const { return inbox_; }

  /// Neighbor ids as of the start of this round (sorted).
  const std::vector<NodeId>& neighbors() const { return *neighbors_; }

  bool is_neighbor(NodeId v) const {
    return std::binary_search(neighbors_->begin(), neighbors_->end(), v);
  }

  /// Previous-round public state of neighbor v; null if v is not a neighbor.
  const PublicState* view(NodeId v) const {
    if (!is_neighbor(v)) return nullptr;
    return engine_->public_state_ptr(v);
  }

  /// Send a message over an existing edge; delivered next round.
  void send(NodeId to, Message m) { engine_->queue_send(self_, to, std::move(m)); }

  /// Deliver a message to self after `delay` rounds (>= 1). Used to pace
  /// multi-guest-level wave processing inside one host (DESIGN.md D2).
  void hold(Message m, std::uint64_t delay) {
    CHS_CHECK(delay >= 1);
    engine_->queue_hold(self_, round_ + delay, std::move(m));
  }

  /// Connect two of this node's current neighbors by a new logical edge.
  void introduce(NodeId a, NodeId b, const char* site = "?") {
    engine_->queue_introduce(self_, a, b, site);
  }

  /// Delete the edge between self and v.
  void disconnect(NodeId v, const char* site = "?") {
    engine_->queue_disconnect(self_, v, site);
  }

  /// Debug: who last requested deletion of edge (self, v), if recorded.
  const char* last_delete_site(NodeId v) const {
    return engine_->last_delete_site(self_, v);
  }

 private:
  friend class Engine<P>;
  NodeId self_ = 0;
  std::uint64_t round_ = 0;
  NodeState* state_ = nullptr;
  util::Rng* rng_ = nullptr;
  std::span<const Envelope<Message>> inbox_;
  const std::vector<NodeId>* neighbors_ = nullptr;
  Engine<P>* engine_ = nullptr;
};

template <typename P>
class Engine {
 public:
  using Message = typename P::Message;
  using NodeState = typename P::NodeState;
  using PublicState = typename P::PublicState;

  Engine(graph::Graph g, P protocol, std::uint64_t seed)
      : graph_(std::move(g)), protocol_(std::move(protocol)), root_rng_(seed) {
    const std::size_t n = graph_.size();
    states_.resize(n);
    publics_.resize(n);
    inboxes_.resize(n);
    delayed_.resize(n);
    holds_.resize(n);
    rngs_.reserve(n);
    for (NodeIndex i = 0; i < n; ++i) {
      rngs_.push_back(root_rng_.split(graph_.id_of(i)));
      protocol_.init_node(graph_.id_of(i), states_[i], rngs_[i]);
    }
    republish();
    metrics_.observe_initial(graph_);
  }

  const graph::Graph& graph() const { return graph_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  std::uint64_t round() const { return round_; }
  RunMetrics& metrics() { return metrics_; }
  const RunMetrics& metrics() const { return metrics_; }

  NodeState& state_mut(NodeId id) { return states_[graph_.index_of(id)]; }
  const NodeState& state(NodeId id) const { return states_[graph_.index_of(id)]; }

  /// Refresh public snapshots after external (fault-injection) mutation.
  void republish() {
    for (NodeIndex i = 0; i < graph_.size(); ++i)
      protocol_.publish(states_[i], publics_[i]);
  }

  /// Direct topology mutation for fault injection; bypasses overlay rules.
  bool inject_edge(NodeId u, NodeId v) { return graph_.add_edge(u, v); }
  bool inject_edge_removal(NodeId u, NodeId v) { return graph_.remove_edge(u, v); }

  /// Asynchrony model (§7 future work): each message is delayed uniformly
  /// in [1, d] rounds instead of exactly 1. Channels stay reliable and
  /// FIFO-per-round; protocol budgets should be scaled via
  /// Params::delay_slack to match.
  void set_max_message_delay(std::uint32_t d) {
    CHS_CHECK(d >= 1);
    max_delay_ = d;
  }

  /// Execute one synchronous round.
  void step_round() {
    const std::size_t n = graph_.size();
    round_actions_ = 0;
    deliveries_this_round_ = 0;

    // Release held self-messages and delayed deliveries due this round.
    for (NodeIndex i = 0; i < n; ++i) {
      auto it = holds_[i].find(round_);
      if (it != holds_[i].end()) {
        for (auto& m : it->second) {
          inboxes_[i].push_back(Envelope<Message>{graph_.id_of(i), std::move(m)});
          ++deliveries_this_round_;
        }
        holds_[i].erase(it);
      }
      auto dt = delayed_[i].find(round_);
      if (dt != delayed_[i].end()) {
        for (auto& env : dt->second) {
          inboxes_[i].push_back(std::move(env));
          ++deliveries_this_round_;
        }
        delayed_[i].erase(dt);
      }
    }

    // Step every node against the start-of-round topology and snapshots.
    for (NodeIndex i = 0; i < n; ++i) {
      NodeCtx<P> ctx;
      ctx.self_ = graph_.id_of(i);
      ctx.round_ = round_;
      ctx.state_ = &states_[i];
      ctx.rng_ = &rngs_[i];
      ctx.inbox_ = std::span<const Envelope<Message>>(inboxes_[i]);
      ctx.neighbors_ = &graph_.neighbors(ctx.self_);
      ctx.engine_ = this;
      protocol_.step(ctx);
      inboxes_[i].clear();
    }

    // Apply deferred edge mutations (adds win over concurrent deletes of the
    // same pair only if requested by distinct pairs; we apply deletes first
    // so an introduce in the same round re-creates deliberately).
    for (std::size_t di = 0; di < pending_deletes_.size(); ++di) {
      const auto& [u, v] = pending_deletes_[di];
      if (graph_.remove_edge(u, v)) {
        metrics_.count_edge_del();
        last_delete_[std::minmax(u, v)] = pending_delete_sites_[di];
      }
    }
    pending_delete_sites_.clear();
    for (const auto& [u, v] : pending_adds_) {
      if (graph_.add_edge(u, v)) metrics_.count_edge_add();
    }
    pending_deletes_.clear();
    pending_adds_.clear();

    // Publish states for next round's neighbor views.
    republish();

    for (auto& box : inboxes_) box.clear();

    metrics_.observe_round(graph_, round_actions_);
    if (round_actions_ == 0 && deliveries_this_round_ == 0 && !holds_pending()) {
      ++quiescent_streak_;
    } else {
      quiescent_streak_ = 0;
    }
    ++round_;
  }

  /// Consecutive fully-silent rounds (no deliveries, holds, or actions).
  std::uint64_t quiescent_streak() const { return quiescent_streak_; }

  /// Run until `done(*this)` holds or max_rounds elapse. Returns the number
  /// of rounds executed and whether the predicate was satisfied.
  template <typename Pred>
  std::pair<std::uint64_t, bool> run_until(Pred&& done, std::uint64_t max_rounds) {
    const std::uint64_t start = round_;
    while (round_ - start < max_rounds) {
      if (done(*this)) return {round_ - start, true};
      step_round();
    }
    return {round_ - start, done(*this)};
  }

 private:
  friend class NodeCtx<P>;

  const PublicState* public_state_ptr(NodeId v) const {
    return &publics_[graph_.index_of(v)];
  }

  void queue_send(NodeId from, NodeId to, Message m) {
    CHS_CHECK_MSG(graph_.has_edge(from, to) || from == to,
                  "send over non-existent edge");
    const std::uint64_t delay =
        max_delay_ == 1 ? 1 : 1 + root_rng_.next_below(max_delay_);
    delayed_[graph_.index_of(to)][round_ + delay].push_back(
        Envelope<Message>{from, std::move(m)});
    metrics_.count_message();
    ++round_actions_;
  }

  void queue_hold(NodeId self, std::uint64_t due_round, Message m) {
    holds_[graph_.index_of(self)][due_round].push_back(std::move(m));
    ++round_actions_;
  }

  void queue_introduce(NodeId self, NodeId a, NodeId b, const char* site = "?") {
    CHS_CHECK_MSG(a != b, "introduce(a, a)");
    const bool a_ok = a == self || graph_.has_edge(self, a);
    const bool b_ok = b == self || graph_.has_edge(self, b);
    if (!(a_ok && b_ok)) {
      std::fprintf(stderr,
                   "introduce of non-neighbors: self=%llu a=%llu(%d) "
                   "b=%llu(%d) round=%llu site=%s\n",
                   static_cast<unsigned long long>(self),
                   static_cast<unsigned long long>(a), int(a_ok),
                   static_cast<unsigned long long>(b), int(b_ok),
                   static_cast<unsigned long long>(round_), site);
      CHS_CHECK_MSG(false, "introduce of non-neighbors");
    }
    pending_adds_.emplace_back(a, b);
    ++round_actions_;
  }

  void queue_disconnect(NodeId self, NodeId v, const char* site = "?") {
    // The edge may have been deleted by the other endpoint in an earlier
    // round; tolerate (the request is then a no-op).
    pending_deletes_.emplace_back(self, v);
    pending_delete_sites_.push_back(site);
    ++round_actions_;
  }

  const char* last_delete_site(NodeId a, NodeId b) {
    auto it = last_delete_.find(std::minmax(a, b));
    return it == last_delete_.end() ? "(none)" : it->second;
  }

  bool holds_pending() const {
    for (const auto& h : holds_)
      if (!h.empty()) return true;
    for (const auto& d : delayed_)
      if (!d.empty()) return true;
    return false;
  }

  graph::Graph graph_;
  P protocol_;
  util::Rng root_rng_;
  std::vector<NodeState> states_;
  std::vector<PublicState> publics_;
  std::vector<std::vector<Envelope<Message>>> inboxes_;
  std::vector<std::map<std::uint64_t, std::vector<Envelope<Message>>>> delayed_;
  std::vector<std::map<std::uint64_t, std::vector<Message>>> holds_;
  std::vector<util::Rng> rngs_;
  std::vector<std::pair<NodeId, NodeId>> pending_adds_;
  std::vector<std::pair<NodeId, NodeId>> pending_deletes_;
  std::vector<const char*> pending_delete_sites_;
  std::map<std::pair<NodeId, NodeId>, const char*> last_delete_;
  RunMetrics metrics_;
  std::uint32_t max_delay_ = 1;
  std::uint64_t round_ = 0;
  std::uint64_t round_actions_ = 0;
  std::uint64_t deliveries_this_round_ = 0;
  std::uint64_t quiescent_streak_ = 0;
};

}  // namespace chs::sim
