// Inbox storage for the round engine (DESIGN.md D5).
//
// One vector of envelopes per node, owned centrally so that (a) capacity is
// retained across rounds — a node that receives k messages every round never
// reallocates after the first — and (b) clearing happens at exactly one
// point per round (the seed engine cleared each inbox twice: once per-node
// after stepping and again in a second full sweep). Only the boxes actually
// touched this round are cleared, so a quiescent network pays nothing.
//
// Threading contract (DESIGN.md D6): deliver/begin_round/end_round run only
// in the engine's serial release phase; during the parallel step phase the
// pool is frozen and workers read inbox() spans concurrently, which is why
// no box may be appended to while any step is in flight.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace chs::sim {

/// A message in flight: payload plus the sender's id.
template <typename M>
struct Envelope {
  graph::NodeId from;
  M msg;

  template <typename A>
  void persist_fields(A& a) {
    a(from);
    a(msg);
  }
};

template <typename M>
class MailboxPool {
 public:
  void init(std::size_t n) {
    boxes_.assign(n, {});
    touched_mark_.assign(n, 0);
    touched_.clear();
    delivered_this_round_ = 0;
  }

  /// Append a delivery to node i's inbox for the current round.
  void deliver(graph::NodeIndex i, Envelope<M> env) {
    CHS_DCHECK(i < boxes_.size());
    if (!touched_mark_[i]) {
      touched_mark_[i] = 1;
      touched_.push_back(i);
    }
    boxes_[i].push_back(std::move(env));
    ++delivered_this_round_;
  }

  std::span<const Envelope<M>> inbox(graph::NodeIndex i) const {
    return boxes_[i];
  }

  bool has_mail(graph::NodeIndex i) const { return !boxes_[i].empty(); }

  std::uint64_t delivered_this_round() const { return delivered_this_round_; }

  void begin_round() { delivered_this_round_ = 0; }

  /// The single per-round clear point. Keeps each box's capacity (arena
  /// reuse) and visits only the boxes delivered to this round.
  void end_round() {
    for (graph::NodeIndex i : touched_) {
      boxes_[i].clear();
      touched_mark_[i] = 0;
    }
    touched_.clear();
  }

  /// Checkpoint/restore (DESIGN.md D9). Between rounds every box is empty
  /// (end_round is the single clear point), but the pool round-trips its
  /// full structure anyway so the restored arena is exactly the live one.
  template <typename A>
  void persist_fields(A& a) {
    a(boxes_);
    a(touched_mark_);
    a(touched_);
    a(delivered_this_round_);
  }

  /// Delta-checkpoint restore (DESIGN.md D10): between rounds every box is
  /// empty and no box is touched — end_round() is the single clear point —
  /// so an engine delta records only `delivered` and rebuilds the arena.
  /// Byte-equivalent to restoring the full structure: sizes and counters
  /// match; only capacities (never serialized) differ.
  void reset_empty(std::size_t n, std::uint64_t delivered) {
    init(n);
    delivered_this_round_ = delivered;
  }

  /// Approximate resident bytes of the arena (capacities, not sizes): the
  /// bytes_per_host accounting. O(n) — call on demand, never per round.
  std::size_t live_bytes() const {
    std::size_t b = boxes_.capacity() * sizeof(boxes_[0]) +
                    touched_mark_.capacity() +
                    touched_.capacity() * sizeof(graph::NodeIndex);
    for (const auto& box : boxes_) b += box.capacity() * sizeof(Envelope<M>);
    return b;
  }

  /// Restore-side structural check (Engine::restore, before commit): the
  /// arena must be sized for n nodes with every touched index in range,
  /// or the next deliver() would index out of bounds.
  bool consistent_for(std::size_t n) const {
    if (boxes_.size() != n || touched_mark_.size() != n) return false;
    for (graph::NodeIndex i : touched_) {
      if (i >= n) return false;
    }
    return true;
  }

 private:
  std::vector<std::vector<Envelope<M>>> boxes_;
  std::vector<std::uint8_t> touched_mark_;
  std::vector<graph::NodeIndex> touched_;
  std::uint64_t delivered_this_round_ = 0;
};

}  // namespace chs::sim
