// E6 — the comparison that motivates the paper (§1, §4.1, §6): three ways to
// build the same robust topology self-stabilizingly.
//
//   scaffolding — this paper: polylog time AND polylog degree expansion.
//   TCF [4]     — fast (clique in O(log diameter)), but Θ(n) peak degree.
//   linear [13,15] — Re-Chord-style line scaffold: low degree, but the line
//                 itself needs Θ(n) rounds from high-diameter configurations.
//   ideal       — §4.1's naive "compute your ideal neighborhood every round"
//                 pattern: fast on benign configurations but with a
//                 data-dependent, near-linear transient degree, and no
//                 stabilization guarantee at all for non-ring-preserving
//                 targets (see tests/test_baselines.cpp).
//
// Expected shape: TCF's and ideal's peak degree columns grow linearly with n
// while the other two stay polylog; the linear baseline's rounds column grows
// linearly with n while the other two stay polylog. Crossovers: TCF/ideal win
// on raw time, lose on space for every n; linear is competitive only at tiny
// n; scaffolding alone is polylog in both columns.
#include <cstdio>
#include <cstdlib>

#include "baselines/ideal.hpp"
#include "baselines/linear.hpp"
#include "baselines/tcf.hpp"
#include "core/experiment.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool big = std::getenv("CHS_BENCH_SCALE") != nullptr;
  std::printf("E6: scaffolding vs TCF vs linear scaffold vs ideal-neighborhood\n\n");

  const std::vector<std::uint64_t> sizes =
      big ? std::vector<std::uint64_t>{64, 256, 1024, 4096}
          : std::vector<std::uint64_t>{64, 256, 1024};
  const graph::Family fam = graph::Family::kLine;  // high diameter: the
                                                   // adversarial case for
                                                   // the linear scaffold

  core::Table table({"algorithm", "N", "n", "conv", "rounds", "peak_degree",
                     "degree_expansion"});
  for (std::uint64_t n_guests : sizes) {
    const std::size_t n_hosts = static_cast<std::size_t>(n_guests / 4);
    util::Rng rng(n_guests * 3 + 1);
    auto ids = graph::sample_ids(n_hosts, n_guests, rng);

    {  // scaffolding (this paper)
      core::SweepPoint pt{fam, n_hosts, n_guests, 1};
      const auto out = core::run_sweep_point(pt, core::Params{}, 400000);
      table.add_row({"scaffolding", core::Table::fmt(n_guests),
                     core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                     out.result.converged ? "yes" : "NO",
                     core::Table::fmt(out.result.rounds),
                     core::Table::fmt(static_cast<std::uint64_t>(out.peak_max_degree)),
                     core::Table::fmt(out.result.degree_expansion, 2)});
    }
    {  // TCF
      util::Rng r2(1);
      const auto res = baselines::run_tcf(graph::make_family(fam, ids, r2),
                                          topology::chord_target(), n_guests,
                                          5000, 1);
      table.add_row({"tcf", core::Table::fmt(n_guests),
                     core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                     res.converged ? "yes" : "NO", core::Table::fmt(res.rounds),
                     core::Table::fmt(static_cast<std::uint64_t>(res.peak_max_degree)),
                     core::Table::fmt(res.degree_expansion, 2)});
    }
    {  // linear scaffold: same initial family; note its target is the
       // rank-line + doubled fingers rather than Avatar(Chord), which only
       // helps it (smaller topology, no guest space).
      util::Rng r3(2);
      // A line initial configuration is already sorted; shuffle-ish start:
      // use a random tree to exercise linearization.
      auto g = graph::make_family(graph::Family::kRandomTree, ids, r3);
      const auto res = baselines::run_linear(std::move(g), 400000, 1);
      table.add_row({"linear", core::Table::fmt(n_guests),
                     core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                     res.converged ? "yes" : "NO", core::Table::fmt(res.rounds),
                     core::Table::fmt(static_cast<std::uint64_t>(res.peak_max_degree)),
                     core::Table::fmt(res.degree_expansion, 2)});
    }
    {  // ideal-neighborhood (§4.1 strawman)
      util::Rng r4(3);
      auto g = graph::make_family(graph::Family::kRandomTree, ids, r4);
      const auto res = baselines::run_ideal(std::move(g),
                                            topology::chord_target(), n_guests,
                                            100000, 1);
      table.add_row({"ideal", core::Table::fmt(n_guests),
                     core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                     res.converged ? "yes" : "NO", core::Table::fmt(res.rounds),
                     core::Table::fmt(static_cast<std::uint64_t>(res.peak_max_degree)),
                     core::Table::fmt(res.degree_expansion, 2)});
    }
  }
  table.print();
  std::printf("\n");
  table.print_csv("e6_baselines");
  return 0;
}
