// E5 — Lemma 4: a "false Chord" phase — nodes that believe, based on local
// state, that they are building Chord from a correct scaffold when the
// global configuration is not a scaffolded one — can only grow any node's
// degree by a factor of at most 2 before every node has fallen back to the
// Avatar(Cbt) algorithm.
//
// Adversarial setup: a *legal* Avatar(Cbt) cluster over all-but-one hosts,
// put mid-build at wave k (every local scaffolded check passes), plus one
// foreign singleton host wired to a single member. Locally only that member
// can notice the extra neighbor; everyone else keeps executing MakeFinger
// waves until the phase-CBT infection reaches them. Measured: rounds until
// all hosts run CBT, and the global peak-degree growth factor meanwhile.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;
using core::StabEngine;
using stabilizer::Phase;

namespace {
bool all_cbt(StabEngine& eng) {
  for (auto id : eng.graph().ids()) {
    if (eng.state(id).phase != Phase::kCbt) return false;
  }
  return true;
}
}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("E5: false-Chord degree growth (Lemma 4)\n\n");
  core::Table table({"N", "n", "wave_k", "fallback_rounds", "2(logN+1)",
                     "peak_growth_factor"});

  for (std::uint64_t n_guests : {64ULL, 256ULL, 1024ULL}) {
    for (std::int32_t k : {0, 2}) {
      const std::size_t n_hosts = static_cast<std::size_t>(n_guests / 4);
      util::Rng rng(n_guests + static_cast<std::uint64_t>(k));
      auto all = graph::sample_ids(n_hosts + 1, n_guests, rng);
      const graph::NodeId intruder = all[all.size() / 3];
      std::vector<graph::NodeId> members;
      for (graph::NodeId id : all) {
        if (id != intruder) members.push_back(id);
      }

      // Member scaffold plus one edge to the foreign singleton.
      graph::Graph g(all);
      for (const auto& [a, b] :
           core::scaffold_graph(members, n_guests).edge_list()) {
        g.add_edge(a, b);
      }
      g.add_edge(intruder, members[members.size() / 2]);

      core::Params p;
      p.n_guests = n_guests;
      auto eng = core::make_engine(std::move(g), p, 11);
      core::install_chord_built_upto(*eng, k, &members);
      // The intruder keeps the default singleton state from init, but its
      // published view must be fresh.
      eng->republish();

      const std::size_t peak0 = eng->graph().max_degree();
      const auto [rounds, ok] =
          eng->run_until([](StabEngine& e) { return all_cbt(e); }, 4000);
      const double factor =
          static_cast<double>(eng->metrics().peak_max_degree()) /
          static_cast<double>(std::max<std::size_t>(1, peak0));

      table.add_row({core::Table::fmt(n_guests),
                     core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                     core::Table::fmt(static_cast<std::uint64_t>(k)),
                     ok ? core::Table::fmt(rounds) : "-",
                     core::Table::fmt(util::pif_wave_round_bound(n_guests)),
                     core::Table::fmt(factor, 2)});
    }
  }
  table.print();
  std::printf("\nLemma 4 predicts peak_growth_factor <= 2 and fallback within "
              "O(log N) rounds.\n");
  table.print_csv("e5_false_chord");
  return 0;
}
