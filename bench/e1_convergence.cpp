// E1 — Theorems 2/5: full self-stabilization to Avatar(Chord) from arbitrary
// connected initial configurations converges in O(log² N) rounds in
// expectation.
//
// For each (family, N) we run several seeded instances (n = N/4 hosts,
// randomly-placed ids) and report mean/max rounds next to the paper's bound
// shape c·log²N: if the algorithm matches the theorem, the rounds/log²N
// column is flat (bounded by a constant) as N grows. Absolute constants are
// implementation-specific (epoch length, grace gaps); the *shape* is the
// claim under test.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool big = std::getenv("CHS_BENCH_SCALE") != nullptr;
  std::printf("E1: convergence rounds from arbitrary configurations "
              "(Theorems 2/5; bound shape c*log^2 N)\n\n");

  const std::vector<std::uint64_t> sizes =
      big ? std::vector<std::uint64_t>{64, 256, 1024, 4096}
          : std::vector<std::uint64_t>{64, 256, 1024};
  const std::vector<graph::Family> families = {
      graph::Family::kLine, graph::Family::kStar, graph::Family::kRandomTree,
      graph::Family::kConnectedGnp};
  const std::uint64_t seeds = big ? 5 : 3;

  core::Table table({"family", "N", "n", "conv", "rounds(mean)", "rounds(p50)",
                     "rounds(p90)", "rounds(max)", "log^2N", "mean/log^2N",
                     "resets(mean)"});
  // Growth-exponent fit across all families: rounds ~ c * (log N)^alpha;
  // the theorems predict alpha <= 2.
  std::vector<double> fit_logn, fit_rounds;
  for (graph::Family fam : families) {
    for (std::uint64_t n_guests : sizes) {
      std::vector<double> rounds, resets;
      bool all_ok = true;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        core::SweepPoint pt{fam, static_cast<std::size_t>(n_guests / 4),
                            n_guests, seed};
        const auto out = core::run_sweep_point(pt, core::Params{}, 400000);
        all_ok = all_ok && out.result.converged;
        // Only converged runs enter the statistics: a budget-capped run
        // reports the budget, not a convergence time (the conv column
        // flags it).
        if (out.result.converged) {
          rounds.push_back(static_cast<double>(out.result.rounds));
          resets.push_back(static_cast<double>(out.result.total_resets));
        }
      }
      const auto rs = core::stats_of(rounds);
      const double lg = static_cast<double>(util::ceil_log2(n_guests));
      fit_logn.push_back(lg);
      fit_rounds.push_back(rs.mean);
      table.add_row({graph::family_name(fam), core::Table::fmt(n_guests),
                     core::Table::fmt(n_guests / 4), all_ok ? "yes" : "NO",
                     core::Table::fmt(rs.mean, 0), core::Table::fmt(rs.p50, 0),
                     core::Table::fmt(rs.p90, 0), core::Table::fmt(rs.max, 0),
                     core::Table::fmt(lg * lg, 0),
                     core::Table::fmt(rs.mean / (lg * lg), 1),
                     core::Table::fmt(core::stats_of(resets).mean, 1)});
    }
  }
  table.print();
  const auto fit = util::fit_power(fit_logn, fit_rounds);
  std::printf("\nfit: rounds ~ %.1f * (log N)^%.2f  (R^2=%.3f; theory: "
              "exponent <= 2)\n\n",
              fit.coefficient, fit.exponent, fit.r_squared);
  table.print_csv("e1_convergence");
  return 0;
}
