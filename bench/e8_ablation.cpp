// E8 — ablations over the design choices DESIGN.md calls out:
//
//   (a) wave pacing: per-guest-hop (paper-faithful round accounting, D2)
//       vs per-host-hop (only inter-host messages cost a round) — how much
//       of the wave time is "virtual" levels inside a host;
//   (b) matching epoch length (epoch_units) — too short starves the
//       poll/grant handshake, too long wastes idle rounds;
//   (c) leader probability — the paper's fair coin vs biased variants;
//   (d) zip-edge retirement (D3'): reference-counted early retirement of
//       merge counterpart edges vs commit-time hygiene only — rounds paid
//       for transient-degree discipline.
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

namespace {
core::RunResult run_once(std::uint64_t n_guests, const core::Params& p,
                         std::uint64_t seed) {
  util::Rng rng(seed * 31 + 7);
  auto ids = graph::sample_ids(n_guests / 4, n_guests, rng);
  auto g = graph::make_random_tree(ids, rng);
  core::Params params = p;
  params.n_guests = n_guests;
  auto eng = core::make_engine(std::move(g), params, seed);
  return core::run_to_convergence(*eng, 400000);
}

double mean_rounds(std::uint64_t n_guests, const core::Params& p) {
  std::vector<double> rounds;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto res = run_once(n_guests, p, seed);
    if (res.converged) rounds.push_back(static_cast<double>(res.rounds));
  }
  return core::stats_of(rounds).mean;
}
}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("E8: ablations (wave pacing, epoch length, leader bias, zip retirement)\n\n");
  const std::uint64_t n_guests = 256;

  {
    core::Table t({"wave_pacing", "N", "scaffolded_build_rounds"});
    for (bool per_guest : {true, false}) {
      core::Params p;
      p.n_guests = n_guests;
      p.per_guest_hop = per_guest;
      util::Rng rng(5);
      auto ids = graph::sample_ids(n_guests / 4, n_guests, rng);
      auto eng = core::make_engine(core::scaffold_graph(ids, n_guests), p, 7);
      core::install_legal_cbt(*eng, core::Phase::kChord);
      const auto res = core::run_to_convergence(*eng, 100000);
      t.add_row({per_guest ? "per-guest-hop (paper)" : "per-host-hop",
                 core::Table::fmt(n_guests),
                 res.converged ? core::Table::fmt(res.rounds) : "-"});
    }
    t.print();
    std::printf("\n");
  }

  {
    core::Table t({"epoch_units", "N", "full_convergence_rounds(mean)"});
    for (std::uint32_t units : {4u, 6u, 8u, 12u, 16u}) {
      core::Params p;
      p.epoch_units = units;
      t.add_row({core::Table::fmt(static_cast<std::uint64_t>(units)),
                 core::Table::fmt(n_guests),
                 core::Table::fmt(mean_rounds(n_guests, p), 0)});
    }
    t.print();
    std::printf("\n");
  }

  {
    core::Table t({"leader_prob", "N", "full_convergence_rounds(mean)"});
    for (std::uint32_t prob :
         {16384u /*0.25*/, 32768u /*0.5*/, 49152u /*0.75*/}) {
      core::Params p;
      p.leader_prob_u16 = prob;
      t.add_row({core::Table::fmt(static_cast<double>(prob) / 65536.0, 2),
                 core::Table::fmt(n_guests),
                 core::Table::fmt(mean_rounds(n_guests, p), 0)});
    }
    t.print();
    std::printf("\n");
  }

  {
    core::Table t({"zip_retirement", "N", "rounds(mean)", "peak_degree(max)",
                   "messages(mean)"});
    for (std::uint64_t big_n : {256ULL, 1024ULL}) {
      for (bool retire : {false, true}) {
        core::Params p;
        p.zip_retirement = retire;
        std::vector<double> rounds, msgs;
        std::size_t peak = 0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          core::SweepPoint pt{graph::Family::kRandomTree,
                              static_cast<std::size_t>(big_n / 4), big_n,
                              seed};
          const auto out = core::run_sweep_point(pt, p, 400000);
          if (out.result.converged) {
            rounds.push_back(static_cast<double>(out.result.rounds));
            msgs.push_back(static_cast<double>(out.result.messages));
          }
          peak = std::max(peak, out.peak_max_degree);
        }
        t.add_row({retire ? "on (D3')" : "off (default)",
                   core::Table::fmt(big_n),
                   core::Table::fmt(core::stats_of(rounds).mean, 0),
                   core::Table::fmt(static_cast<std::uint64_t>(peak)),
                   core::Table::fmt(core::stats_of(msgs).mean, 0)});
      }
    }
    t.print();
  }
  return 0;
}
