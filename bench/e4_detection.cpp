// E4 — Lemmas 1-2: if the configuration is neither a legal Avatar(Chord)
// nor a scaffolded Chord configuration, then within O(log N) rounds every
// node is executing the Avatar(Cbt) algorithm (phase = CBT).
//
// Corruption modes applied to a fully converged (phase DONE, silent)
// network:
//   range     — one host's responsible range is truncated,
//   wave      — one host's wave counter is rolled back by 2,
//   edge_add  — a random non-topology edge is injected,
//   edge_del  — a random finger host edge is removed,
//   cluster   — one host claims a different cluster root.
// Measured: rounds until every host has phase CBT ("infected"), against the
// paper's 2(log N + 1) bound (plus the tolerance-window slack the
// implementation grants in-flight waves).
#include <cstdio>
#include <cstring>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;
using core::StabEngine;
using stabilizer::Phase;

namespace {

bool all_cbt(StabEngine& eng) {
  for (auto id : eng.graph().ids()) {
    if (eng.state(id).phase != Phase::kCbt) return false;
  }
  return true;
}

std::unique_ptr<StabEngine> converged_engine(std::uint64_t n_guests,
                                             std::size_t n_hosts,
                                             std::uint64_t seed) {
  util::Rng rng(seed * 1000 + 5);
  auto ids = graph::sample_ids(n_hosts, n_guests, rng);
  core::Params p;
  p.n_guests = n_guests;
  auto eng = core::make_engine(core::scaffold_graph(ids, n_guests), p, seed);
  core::install_legal_cbt(*eng, Phase::kChord);
  const auto res = core::run_to_convergence(*eng, 100000);
  CHS_CHECK_MSG(res.converged, "setup must converge");
  return eng;
}

void corrupt(StabEngine& eng, const char* mode, util::Rng& rng) {
  const auto& ids = eng.graph().ids();
  const graph::NodeId victim = ids[rng.next_below(ids.size())];
  auto& st = eng.state_mut(victim);
  if (!std::strcmp(mode, "range")) {
    st.hi = std::max(st.lo + 1, st.hi - 1);
  } else if (!std::strcmp(mode, "wave")) {
    st.wave_k = std::max(-1, st.wave_k - 2);
  } else if (!std::strcmp(mode, "edge_add")) {
    for (int tries = 0; tries < 64; ++tries) {
      const graph::NodeId other = ids[rng.next_below(ids.size())];
      if (other != victim && !eng.graph().has_edge(victim, other)) {
        eng.inject_edge(victim, other);
        break;
      }
    }
  } else if (!std::strcmp(mode, "edge_del")) {
    const auto& nbrs = eng.graph().neighbors(victim);
    if (!nbrs.empty()) {
      eng.inject_edge_removal(victim, nbrs[rng.next_below(nbrs.size())]);
    }
  } else if (!std::strcmp(mode, "cluster")) {
    st.cluster = victim;  // claim to be a root (wrong unless it hosts m0)
  }
  eng.republish();
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("E4: detection latency — rounds until all hosts run the "
              "Avatar(Cbt) algorithm (Lemmas 1-2)\n\n");
  const std::vector<std::uint64_t> sizes{64, 256, 1024};
  const std::vector<const char*> modes{"range", "wave", "edge_add", "edge_del",
                                       "cluster"};

  core::Table table({"corruption", "N", "detect_rounds(mean)",
                     "detect_rounds(max)", "2(logN+1)", "max/bound"});
  for (const char* mode : modes) {
    for (std::uint64_t n_guests : sizes) {
      std::vector<double> detect;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto eng = converged_engine(n_guests, n_guests / 4, seed);
        util::Rng rng(seed);
        corrupt(*eng, mode, rng);
        const auto [rounds, ok] =
            eng->run_until([](StabEngine& e) { return all_cbt(e); }, 4000);
        detect.push_back(ok ? static_cast<double>(rounds) : -1.0);
      }
      const auto ds = core::stats_of(detect);
      const double bound =
          static_cast<double>(util::pif_wave_round_bound(n_guests));
      table.add_row({mode, core::Table::fmt(n_guests),
                     core::Table::fmt(ds.mean, 0), core::Table::fmt(ds.max, 0),
                     core::Table::fmt(bound, 0),
                     core::Table::fmt(ds.max / bound, 2)});
    }
  }
  table.print();
  std::printf("\nEdge corruptions are bounded by 2(logN+1) plus the DONE\n"
              "settling window (phase_wave_deadline), hence ratios near 2.\n");
  table.print_csv("e4_detection");
  return 0;
}
