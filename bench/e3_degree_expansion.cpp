// E3 — Theorems 3/7: the degree expansion (peak degree during convergence
// over max(initial, final) degree) is O(log² N) in expectation; in practice
// it hovers near a small constant because almost every added edge belongs to
// the final configuration.
//
// The star family is the interesting adversary here: its hub starts with
// degree n-1, so the baseline max(initial, final) is large and the expansion
// must stay near 1; the line family starts with degree 2, so any transient
// growth shows up directly.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool big = std::getenv("CHS_BENCH_SCALE") != nullptr;
  std::printf("E3: degree expansion during convergence (Theorems 3/7)\n\n");

  const std::vector<std::uint64_t> sizes =
      big ? std::vector<std::uint64_t>{64, 256, 1024, 4096}
          : std::vector<std::uint64_t>{64, 256, 1024};
  const std::vector<graph::Family> families = {
      graph::Family::kLine, graph::Family::kStar, graph::Family::kRandomTree};
  const std::uint64_t seeds = big ? 5 : 3;

  core::Table table({"family", "N", "n", "deg0(max)", "deg_final(max)",
                     "deg_peak(max)", "expansion(mean)", "expansion(max)",
                     "log^2N"});
  std::vector<double> fit_logn, fit_exp;
  for (graph::Family fam : families) {
    for (std::uint64_t n_guests : sizes) {
      std::vector<double> exps;
      std::size_t d0 = 0, df = 0, dp = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        core::SweepPoint pt{fam, static_cast<std::size_t>(n_guests / 4),
                            n_guests, seed};
        const auto out = core::run_sweep_point(pt, core::Params{}, 400000);
        exps.push_back(out.result.degree_expansion);
        d0 = std::max(d0, out.initial_max_degree);
        df = std::max(df, out.final_max_degree);
        dp = std::max(dp, out.peak_max_degree);
      }
      const auto es = core::stats_of(exps);
      const double lg = static_cast<double>(util::ceil_log2(n_guests));
      fit_logn.push_back(lg);
      fit_exp.push_back(es.mean);
      table.add_row({graph::family_name(fam), core::Table::fmt(n_guests),
                     core::Table::fmt(n_guests / 4),
                     core::Table::fmt(static_cast<std::uint64_t>(d0)),
                     core::Table::fmt(static_cast<std::uint64_t>(df)),
                     core::Table::fmt(static_cast<std::uint64_t>(dp)),
                     core::Table::fmt(es.mean, 2), core::Table::fmt(es.max, 2),
                     core::Table::fmt(lg * lg, 0)});
    }
  }
  table.print();
  const auto fit = util::fit_power(fit_logn, fit_exp);
  std::printf("\nfit: expansion ~ %.2f * (log N)^%.2f  (R^2=%.3f; theory: "
              "exponent <= 2, measured near 0 because added edges are final "
              "edges)\n\n",
              fit.coefficient, fit.exponent, fit.r_squared);
  table.print_csv("e3_degree_expansion");
  return 0;
}
