// E7 — the paper's robustness motivation (§1, §4.2): the finished
// Avatar(Chord) supports O(log N)-hop greedy routing and keeps almost all
// pairs reachable under random node failures, while the bare Cbt scaffold —
// a tree — shatters (every internal node is a cut vertex). Two more views of
// the same claim: forwarding congestion (the scaffold funnels half of all
// routes through the top of the tree) and end-to-end read availability of a
// replicated KV store running in-band over the built overlay.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "dht/kvstore.hpp"
#include "graph/generators.hpp"
#include "routing/lookup.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool big = std::getenv("CHS_BENCH_SCALE") != nullptr;
  std::printf("E7a: greedy lookup hops on Chord(N) (guest level)\n\n");

  std::vector<std::uint64_t> sizes{64, 256, 1024, 4096};
  if (big) sizes.push_back(65536);

  core::Table hops({"N", "mean_hops", "max_hops", "logN", "max/logN"});
  for (std::uint64_t n : sizes) {
    util::Rng rng(3);
    const auto stats =
        routing::lookup_stats(topology::chord_target(), n, {}, 2000, rng);
    const double lg = static_cast<double>(util::ceil_log2(n));
    hops.add_row({core::Table::fmt(n), core::Table::fmt(stats.mean_guest_hops, 2),
                  core::Table::fmt(stats.max_guest_hops),
                  core::Table::fmt(lg, 0),
                  core::Table::fmt(static_cast<double>(stats.max_guest_hops) / lg, 2)});
  }
  hops.print();

  std::printf("\nE7b: pairwise reachability after random host failures "
              "(Chord vs bare Cbt host graphs, n=128 hosts, N=1024)\n\n");
  util::Rng rng(17);
  auto ids = graph::sample_ids(128, 1024, rng);
  const auto points = routing::robustness_sweep(
      ids, 1024, {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}, 5, rng);
  core::Table rob({"failed_frac", "chord_reach", "cbt_reach"});
  for (const auto& pt : points) {
    rob.add_row({core::Table::fmt(pt.failed_fraction, 2),
                 core::Table::fmt(pt.chord_reachability, 3),
                 core::Table::fmt(pt.cbt_reachability, 3)});
  }
  rob.print();

  std::printf("\nE7c: lookup success under failures (guest level, N=1024)\n\n");
  core::Table surv({"failed_frac", "success_rate", "mean_hops"});
  for (double frac : {0.0, 0.1, 0.2, 0.3}) {
    std::vector<bool> alive(1024, true);
    util::Rng r2(23);
    for (std::size_t killed = 0;
         killed < static_cast<std::size_t>(frac * 1024);) {
      const std::size_t v = r2.next_below(1024);
      if (alive[v]) {
        alive[v] = false;
        ++killed;
      }
    }
    const auto stats = routing::lookup_stats(topology::chord_target(), 1024,
                                             {}, 2000, r2, &alive);
    surv.add_row({core::Table::fmt(frac, 2),
                  core::Table::fmt(stats.success_rate, 3),
                  core::Table::fmt(stats.mean_guest_hops, 2)});
  }
  surv.print();

  std::printf("\nE7d: forwarding congestion under uniform lookups (guest "
              "level; imbalance = hottest load / mean load)\n\n");
  core::Table cong({"N", "chord_imbalance", "cbt_imbalance", "cbt_hot_depth"});
  for (std::uint64_t n : {256ULL, 1024ULL, 4096ULL}) {
    std::vector<graph::NodeId> dense(n);
    for (std::uint64_t i = 0; i < n; ++i) dense[i] = i;
    util::Rng r3(7), r4(7);
    const auto chord_c = routing::target_congestion(topology::chord_target(),
                                                    n, dense, 4000, r3);
    const auto cbt_c = routing::cbt_congestion(n, dense, 4000, r4);
    cong.add_row(
        {core::Table::fmt(n), core::Table::fmt(chord_c.imbalance, 2),
         core::Table::fmt(cbt_c.imbalance, 2),
         core::Table::fmt(static_cast<std::uint64_t>(
             topology::Cbt(n).depth_of(cbt_c.hottest)))});
  }
  cong.print();

  std::printf("\nE7e: replicated KV reads after host failures (in-band "
              "data plane, N=512, 48 hosts, 64 keys)\n\n");
  core::Table kvt({"replicas", "failed_frac", "reads_ok", "lost", "routing_fail"});
  for (std::uint32_t replicas : {1u, 2u, 3u}) {
    for (double frac : {0.1, 0.2, 0.3}) {
      util::Rng r5(2024);
      auto kv_ids = graph::sample_ids(48, 512, r5);
      core::Params p;
      p.n_guests = 512;
      auto eng = core::make_engine(core::scaffold_graph(kv_ids, 512), p, 6);
      core::install_legal_cbt(*eng, core::Phase::kChord);
      if (!core::run_to_convergence(*eng, 100000).converged) continue;
      dht::KvCluster kv(*eng, replicas, 11);
      for (std::uint64_t key = 0; key < 64; ++key) kv.put(key, "v");
      std::vector<graph::NodeId> pool(kv_ids.begin(), kv_ids.end());
      for (std::size_t i = pool.size(); i > 1; --i) {
        std::swap(pool[i - 1], pool[r5.next_below(i)]);
      }
      const std::size_t kills =
          static_cast<std::size_t>(frac * static_cast<double>(pool.size()));
      for (std::size_t i = 0; i < kills; ++i) kv.fail_host(pool[i]);
      std::size_t ok = 0, lost = 0, route_fail = 0;
      for (std::uint64_t key = 0; key < 64; ++key) {
        if (kv.get(key).has_value()) {
          ++ok;
          continue;
        }
        bool any_live = false;
        for (graph::NodeId h : kv.holders(key)) {
          if (!kv.is_down(h)) any_live = true;
        }
        ++(any_live ? route_fail : lost);
      }
      kvt.add_row({core::Table::fmt(static_cast<std::uint64_t>(replicas)),
                   core::Table::fmt(frac, 2),
                   core::Table::fmt(static_cast<std::uint64_t>(ok)),
                   core::Table::fmt(static_cast<std::uint64_t>(lost)),
                   core::Table::fmt(static_cast<std::uint64_t>(route_fail))});
    }
  }
  kvt.print();

  std::printf("\n");
  hops.print_csv("e7a_hops");
  rob.print_csv("e7b_robustness");
  surv.print_csv("e7c_survival");
  cong.print_csv("e7d_congestion");
  kvt.print_csv("e7e_kv_failover");
  return 0;
}
