// E2 — Lemma 3: starting from the correct Avatar(Cbt) scaffold with
// phase = CHORD (configuration G0), Algorithm 1 converges to Avatar(Chord)
// in O(log² N) rounds: log N − 1 MakeFinger waves of at most 2(log N + 1)
// rounds each, plus the DONE wave and the serialization grace.
//
// The table reports measured rounds against the explicit wave-sum bound,
// checks that not a single detector reset fires during a clean build (the
// scaffolded predicate never misfires on a legal execution), and runs the
// guest-granular Fig. 1 reference model (stabilizer/guest_model.hpp) beside
// the host implementation: fig1_rounds is the literal pseudocode's round
// count, whose every wave is <= 2(log N + 1) by construction.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "stabilizer/guest_model.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool big = std::getenv("CHS_BENCH_SCALE") != nullptr;
  std::printf("E2: scaffolded Chord construction (Lemma 3)\n\n");

  std::vector<std::uint64_t> sizes{64, 256, 1024, 4096};
  if (big) {
    sizes.push_back(16384);
    sizes.push_back(65536);
  }

  core::Table table({"N", "n", "conv", "rounds", "waves", "bound", "rounds/bound",
                     "fig1_rounds", "resets", "deg_expansion"});
  for (std::uint64_t n_guests : sizes) {
    const std::size_t n_hosts = static_cast<std::size_t>(n_guests / 4);
    util::Rng rng(n_guests ^ 0xabcdef);
    auto ids = graph::sample_ids(n_hosts, n_guests, rng);
    core::Params p;
    p.n_guests = n_guests;
    auto eng = core::make_engine(core::scaffold_graph(ids, n_guests), p, 7);
    core::install_legal_cbt(*eng, core::Phase::kChord);
    const auto res = core::run_to_convergence(*eng, 100000);

    const std::uint64_t lg = util::ceil_log2(n_guests);
    const std::uint64_t waves = eng->protocol().num_waves() + 1;  // + DONE
    const std::uint64_t bound =
        waves * (util::pif_wave_round_bound(n_guests) +
                 core::Params{}.inter_wave_grace + 2);
    stabilizer::GuestAlgorithm1 fig1(n_guests);
    const std::uint64_t fig1_rounds = fig1.run_all();
    table.add_row({core::Table::fmt(n_guests), core::Table::fmt(static_cast<std::uint64_t>(n_hosts)),
                   res.converged ? "yes" : "NO", core::Table::fmt(res.rounds),
                   core::Table::fmt(waves), core::Table::fmt(bound),
                   core::Table::fmt(static_cast<double>(res.rounds) /
                                        static_cast<double>(bound),
                                    2),
                   core::Table::fmt(fig1_rounds),
                   core::Table::fmt(res.total_resets),
                   core::Table::fmt(res.degree_expansion, 2)});
    (void)lg;
  }
  table.print();
  std::printf("\n");
  table.print_csv("e2_scaffolded_build");
  return 0;
}
