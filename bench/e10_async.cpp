// E10 — beyond the paper (§7 future work): stabilization under bounded
// message asynchrony. Messages are delayed uniformly in [1, d] rounds and
// all protocol budgets stretch by d. The interesting shape: convergence
// time grows roughly linearly in d (every wave and epoch is d× longer) but
// stays polylog in N — asynchrony costs a constant factor, not a new
// asymptotic term.
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("E10: bounded asynchrony (message delay uniform in [1, d])\n\n");
  core::Table table({"d", "N", "conv", "rounds(mean)", "rounds/d",
                     "degree_expansion(mean)", "stepped_frac(mean)"});
  for (std::uint32_t d : {1u, 2u, 3u, 4u}) {
    for (std::uint64_t n_guests : {64ULL, 256ULL}) {
      std::vector<double> rounds, exps, stepped;
      bool all_ok = true;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        util::Rng rng(seed * 41);
        auto ids = graph::sample_ids(n_guests / 4, n_guests, rng);
        core::Params p;
        p.n_guests = n_guests;
        p.delay_slack = d;
        auto eng =
            core::make_engine(graph::make_random_tree(ids, rng), p, seed);
        eng->set_max_message_delay(d);
        const auto res = core::run_to_convergence(*eng, 2000000);
        all_ok = all_ok && res.converged;
        rounds.push_back(static_cast<double>(res.rounds));
        exps.push_back(res.degree_expansion);
        // Fraction of node-steps the active-set loop actually executed,
        // relative to the classic step-everyone loop. Longer delays mean
        // more idle waiting — exactly where skipping quiescent nodes pays.
        stepped.push_back(static_cast<double>(eng->metrics().nodes_stepped()) /
                          (static_cast<double>(eng->metrics().rounds()) *
                           static_cast<double>(ids.size())));
      }
      const auto rs = core::stats_of(rounds);
      table.add_row({core::Table::fmt(static_cast<std::uint64_t>(d)),
                     core::Table::fmt(n_guests), all_ok ? "yes" : "NO",
                     core::Table::fmt(rs.mean, 0),
                     core::Table::fmt(rs.mean / d, 0),
                     core::Table::fmt(core::stats_of(exps).mean, 2),
                     core::Table::fmt(core::stats_of(stepped).mean, 2)});
    }
  }
  table.print();
  std::printf("\n");
  table.print_csv("e10_async");
  return 0;
}
