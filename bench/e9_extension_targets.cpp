// E9 — §6 generality of the network-scaffolding pattern: the same scaffold,
// wave engine, and phase machinery instantiated for other targets.
//
//   chord     — the paper's Definition 1 (log N − 1 waves, keep all).
//   bichord   — full finger table (one extra wave, span N/2).
//   hypercube — keep (i, i+2^k) iff bit k of i is clear; the DONE wave
//               prunes the non-hypercube span edges the induction needed.
//   skiplist  — keep (i, i+2^k) iff 2^k | i: deterministic skip list.
//   smallworld— ring + one hash-chosen long-range finger per guest
//               (derandomized Kleinberg wiring).
//
// Each target is built from a scaffolded start and from a random tree; the
// expected shape is the same O(log² N) column regardless of target.
#include <cstdio>

#include "core/experiment.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("E9: extension targets via the scaffolding pattern (§6)\n\n");

  core::Table table({"target", "N", "start", "conv", "rounds", "waves",
                     "final_edges"});
  for (const auto& [name, target] :
       std::vector<std::pair<const char*, topology::TargetSpec>>{
           {"chord", topology::chord_target()},
           {"bichord", topology::bichord_target()},
           {"hypercube", topology::hypercube_target()},
           {"skiplist", topology::skiplist_target()},
           {"smallworld", topology::smallworld_target(/*salt=*/21)}}) {
    for (std::uint64_t n_guests : {64ULL, 256ULL, 1024ULL}) {
      for (const char* start : {"scaffold", "random_tree"}) {
        util::Rng rng(n_guests + 77);
        auto ids = graph::sample_ids(n_guests / 4, n_guests, rng);
        core::Params p;
        p.n_guests = n_guests;
        p.target = target;
        std::unique_ptr<core::StabEngine> eng;
        if (!std::string(start).compare("scaffold")) {
          eng = core::make_engine(core::scaffold_graph(ids, n_guests), p, 7);
          core::install_legal_cbt(*eng, core::Phase::kChord);
        } else {
          eng = core::make_engine(graph::make_random_tree(ids, rng), p, 7);
        }
        const auto res = core::run_to_convergence(*eng, 400000);
        table.add_row(
            {name, core::Table::fmt(n_guests), start,
             res.converged ? "yes" : "NO", core::Table::fmt(res.rounds),
             core::Table::fmt(
                 static_cast<std::uint64_t>(eng->protocol().num_waves())),
             core::Table::fmt(
                 static_cast<std::uint64_t>(eng->graph().num_edges()))});
      }
    }
  }
  table.print();
  std::printf("\n");
  table.print_csv("e9_extension_targets");
  return 0;
}
