// Microbenchmarks of the geometry and engine hot paths (google-benchmark).
// These are the per-round primitives whose cost determines how large an N
// the experiment sweeps can afford.
//
// Engine knobs exercised here (both default off/1 — see DESIGN.md D6):
//   * Engine::set_worker_threads(k) — deterministic parallel rounds: the
//     stepped set and dirty-publish set shard across k workers with
//     bit-for-bit identical traces at any k (BM_EngineBusyRound sweeps k;
//     speedup tracks physical cores, so expect none on a 1-vCPU host).
//   * Engine::set_idle_fast_forward(true) — provably empty gap rounds are
//     jumped wholesale instead of iterated (BM_EngineIdleGap).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "avatar/range.hpp"
#include "campaign/runner.hpp"
#include "core/network.hpp"
#include "dht/kvstore.hpp"
#include "graph/generators.hpp"
#include "obs/series.hpp"
#include "persist/fields.hpp"
#include "persist/io.hpp"
#include "stabilizer/guest_model.hpp"
#include "topology/cbt.hpp"
#include "topology/target.hpp"
#include "util/interval_map.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "verify/oracle.hpp"

namespace {

void BM_CbtIntervalOf(benchmark::State& state) {
  const chs::topology::Cbt cbt(1ULL << static_cast<unsigned>(state.range(0)));
  chs::util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbt.interval_of(rng.next_below(cbt.n())));
  }
}
BENCHMARK(BM_CbtIntervalOf)->Arg(10)->Arg(16)->Arg(20);

void BM_CbtFragments(benchmark::State& state) {
  const chs::topology::Cbt cbt(1ULL << static_cast<unsigned>(state.range(0)));
  chs::util::Rng rng(2);
  for (auto _ : state) {
    auto a = rng.next_below(cbt.n());
    auto b = rng.next_below(cbt.n() + 1);
    if (a > b) std::swap(a, b);
    if (a == b) b = a + 1;
    benchmark::DoNotOptimize(cbt.fragments(a, b));
  }
}
BENCHMARK(BM_CbtFragments)->Arg(10)->Arg(16)->Arg(20);

void BM_CbtCrossingEdges(benchmark::State& state) {
  const chs::topology::Cbt cbt(1ULL << static_cast<unsigned>(state.range(0)));
  chs::util::Rng rng(3);
  for (auto _ : state) {
    auto a = rng.next_below(cbt.n());
    auto b = rng.next_below(cbt.n() + 1);
    if (a > b) std::swap(a, b);
    if (a == b) b = a + 1;
    benchmark::DoNotOptimize(cbt.crossing_edges(a, b));
  }
}
BENCHMARK(BM_CbtCrossingEdges)->Arg(10)->Arg(16)->Arg(20);

void BM_ZipWinner(benchmark::State& state) {
  chs::util::Rng rng(4);
  for (auto _ : state) {
    const auto g = rng.next_below(1 << 20);
    const auto a = rng.next_below(1 << 20);
    auto b = rng.next_below(1 << 20);
    if (b == a) b = a + 1;
    benchmark::DoNotOptimize(chs::avatar::zip_winner(g, a, b));
  }
}
BENCHMARK(BM_ZipWinner);

void BM_IntervalMapAssignFind(benchmark::State& state) {
  chs::util::Rng rng(5);
  for (auto _ : state) {
    chs::util::IntervalMap<std::uint64_t> m;
    for (int i = 0; i < 32; ++i) {
      auto a = rng.next_below(1 << 16);
      auto b = rng.next_below(1 << 16);
      if (a > b) std::swap(a, b);
      m.assign(a, b, i);
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(m.find(rng.next_below(1 << 16)));
    }
  }
}
BENCHMARK(BM_IntervalMapAssignFind);

void BM_GraphAddRemoveEdges(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<chs::graph::NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  chs::util::Rng rng(6);
  for (auto _ : state) {
    chs::graph::Graph g(ids);
    for (std::size_t i = 0; i < 4 * n; ++i) {
      g.add_edge(rng.next_below(n), rng.next_below(n));
    }
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphAddRemoveEdges)->Arg(256)->Arg(1024);

void BM_TargetAnyKeptIn(benchmark::State& state) {
  // The DONE-prune's range query for the three predicate shapes: constant
  // (chord), closed-form (skiplist), early-exit scan (smallworld).
  const std::uint64_t n = 1ULL << 16;
  const auto target = state.range(0) == 0   ? chs::topology::chord_target()
                      : state.range(0) == 1 ? chs::topology::skiplist_target()
                                            : chs::topology::smallworld_target(7);
  const auto query = target.any_kept_in
                         ? target.any_kept_in
                         : [](std::uint64_t, std::uint64_t, std::uint32_t,
                              std::uint64_t) { return true; };
  chs::util::Rng rng(7);
  for (auto _ : state) {
    auto a = rng.next_below(n);
    auto b = rng.next_below(n + 1);
    if (a > b) std::swap(a, b);
    benchmark::DoNotOptimize(
        query(a, b, static_cast<std::uint32_t>(rng.next_below(15)), n));
  }
}
BENCHMARK(BM_TargetAnyKeptIn)->Arg(0)->Arg(1)->Arg(2);

void BM_HostOf(benchmark::State& state) {
  const std::uint64_t n = 1ULL << 20;
  chs::util::Rng rng(8);
  auto ids = chs::graph::sample_ids(static_cast<std::size_t>(state.range(0)),
                                    n, rng);
  std::sort(ids.begin(), ids.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chs::avatar::host_of(rng.next_below(n), ids));
  }
}
BENCHMARK(BM_HostOf)->Arg(256)->Arg(4096);

void BM_KeyToGuest(benchmark::State& state) {
  chs::util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chs::dht::key_to_guest(rng.next_u64(), 1 << 20));
  }
}
BENCHMARK(BM_KeyToGuest);

void BM_GuestModelRunAll(benchmark::State& state) {
  // The Fig. 1 reference model end to end: O(N log N) work per run.
  const std::uint64_t n = 1ULL << static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    chs::stabilizer::GuestAlgorithm1 model(n);
    benchmark::DoNotOptimize(model.run_all());
  }
}
BENCHMARK(BM_GuestModelRunAll)->Arg(8)->Arg(10)->Arg(12);

// --- engine round loop -----------------------------------------------------

// A converged (quiescent) Avatar(Chord) network. Built once and reused
// across iterations: stepping a converged network changes nothing, so every
// iteration measures the same thing — the fixed per-round cost of the
// engine itself. The default 10k hosts over 16384 guests is the historical
// headline configuration; the scale ladder below pushes the same recipe to
// 100k and 1M hosts.
constexpr std::size_t kQuiescentHosts = 10000;
constexpr std::uint64_t kQuiescentGuests = 16384;

std::uint64_t guests_for(std::size_t hosts) {
  if (hosts == kQuiescentHosts) return kQuiescentGuests;  // headline recipe
  std::uint64_t g = 1;
  while (g < hosts + hosts / 3) g <<= 1;  // next pow2 >= ~1.3x hosts
  return g;
}

std::unique_ptr<chs::core::StabEngine> build_quiescent(std::size_t hosts) {
  using chs::core::StabEngine;
  chs::util::set_log_level(chs::util::LogLevel::kError);
  const std::uint64_t guests = guests_for(hosts);
  chs::util::Rng rng(1);
  auto ids = chs::graph::sample_ids(hosts, guests, rng);
  chs::core::Params p;
  p.n_guests = guests;
  auto slot = chs::core::make_engine(chs::core::scaffold_graph(ids, guests),
                                     p, 1);
  chs::core::install_chord_built_upto(
      *slot, static_cast<std::int32_t>(slot->protocol().num_waves()) - 1,
      &ids);
  slot->run_until(
      [](StabEngine& e) { return e.quiescent_streak() >= 8; }, 5000);
  // Drain the stale-wakeup tail left over from the active phase so the
  // steady state is the true converged cost.
  while (slot->pending_events() != 0) slot->step_round();
  // Unbounded iteration count ahead: stop the per-round degree trace.
  slot->metrics().set_trace_recording(false);
  return slot;
}

chs::core::StabEngine& quiescent_engine(chs::sim::StepMode mode) {
  static std::unique_ptr<chs::core::StabEngine> cache[2];
  auto& slot = cache[mode == chs::sim::StepMode::kActiveSet ? 1 : 0];
  if (!slot) {
    slot = build_quiescent(kQuiescentHosts);
    slot->set_step_mode(mode);
    slot->step_round();  // absorb the wake_all a mode switch performs
  }
  return *slot;
}

// Scale-ladder engines are too large to keep several alive at once (a
// 1M-host engine is GBs), so this cache holds exactly one host count and
// rebuilds on change — register ladder args grouped by host count.
chs::core::StabEngine& scale_engine(std::size_t hosts,
                                    chs::sim::StepMode mode) {
  static std::unique_ptr<chs::core::StabEngine> slot;
  static std::size_t cached_hosts = 0;
  static chs::sim::StepMode cached_mode = chs::sim::StepMode::kActiveSet;
  const bool rebuilt = !slot || cached_hosts != hosts;
  if (rebuilt) {
    slot.reset();  // free the previous ladder rung before building the next
    slot = build_quiescent(hosts);
    cached_hosts = hosts;
  }
  // A fresh engine is in the protocol's preferred mode (kActiveSet for the
  // stabilizer — set in the Engine constructor, not the field default), so
  // the requested mode must be forced after every rebuild: assuming kAll
  // would leave the busy rungs measuring empty active-set rounds.
  if (rebuilt || cached_mode != mode) {
    slot->set_step_mode(mode);
    slot->step_round();  // absorb the wake_all a mode switch performs
    cached_mode = mode;
  }
  return *slot;
}

// Time-per-round on a mostly-quiescent 10k-host network. Arg: 0 = classic
// step-everyone loop, 1 = active-set loop. The stepped_per_round counter is
// the headline: ~n for mode 0, ~0 for mode 1.
void BM_EngineQuiescentRound(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? chs::sim::StepMode::kAll
                                        : chs::sim::StepMode::kActiveSet;
  auto& eng = quiescent_engine(mode);
  const std::uint64_t stepped0 = eng.metrics().nodes_stepped();
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    eng.step_round();
    ++rounds;
  }
  state.counters["stepped_per_round"] = benchmark::Counter(
      static_cast<double>(eng.metrics().nodes_stepped() - stepped0) /
      static_cast<double>(rounds == 0 ? 1 : rounds));
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_EngineQuiescentRound)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Busy-phase round cost vs worker count and host count: StepMode::kAll on
// a converged network steps every host through the full protocol step
// every round — the stable stand-in for the stabilization rounds that
// dominate e1/e2/e8 wall clock. Args: {worker threads, hosts} (1 worker =
// sequential engine). Traces are identical at every worker count; only
// wall clock may differ, and it only improves when physical cores exist
// (BENCH_micro.json records num_cpus — on a 1-vCPU host the sweep measures
// pool overhead instead).
void BM_EngineBusyRound(benchmark::State& state) {
  const std::size_t hosts = static_cast<std::size_t>(state.range(1));
  auto& eng = hosts == kQuiescentHosts
                  ? quiescent_engine(chs::sim::StepMode::kAll)
                  : scale_engine(hosts, chs::sim::StepMode::kAll);
  eng.set_worker_threads(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t stepped0 = eng.metrics().nodes_stepped();
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    eng.step_round();
    ++rounds;
  }
  eng.set_worker_threads(1);
  eng.record_live_bytes();
  state.counters["stepped_per_round"] = benchmark::Counter(
      static_cast<double>(eng.metrics().nodes_stepped() - stepped0) /
      static_cast<double>(rounds == 0 ? 1 : rounds));
  state.counters["hosts"] = static_cast<double>(hosts);
  state.counters["bytes_per_host"] =
      static_cast<double>(eng.metrics().bytes_per_host());
}
BENCHMARK(BM_EngineBusyRound)
    ->Args({1, 10000})->Args({2, 10000})->Args({4, 10000})->Args({8, 10000})
    ->Args({4, 100000})
    ->Unit(benchmark::kMicrosecond);

// Online invariant oracle (DESIGN.md D8) riding the busy round: StepMode
// kAll steps — and therefore dirties — all 10k hosts every round, so the
// oracle re-checks every host at stride 1: the worst case. Arg: 0 = no
// oracle installed (must match BM_EngineBusyRound/1 — the hook costs one
// untaken branch per round), otherwise the sampling stride. On a quiescent
// active-set network the dirty set is empty and oracle cost is ~zero
// regardless of stride.
void BM_OracleRound(benchmark::State& state) {
  auto& eng = quiescent_engine(chs::sim::StepMode::kAll);
  const std::uint64_t stride = static_cast<std::uint64_t>(state.range(0));
  std::unique_ptr<chs::verify::InvariantOracle> oracle;
  if (stride > 0) {
    oracle = std::make_unique<chs::verify::InvariantOracle>(
        eng, chs::verify::OracleConfig{.stride = stride});
  }
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    eng.step_round();
    ++rounds;
  }
  if (oracle) {
    state.counters["hosts_checked_per_round"] = benchmark::Counter(
        static_cast<double>(oracle->hosts_checked()) /
        static_cast<double>(rounds == 0 ? 1 : rounds));
    if (oracle->violation()) state.SkipWithError("invariant violation");
    oracle->detach();
  }
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_OracleRound)->Arg(0)->Arg(1)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Telemetry series recorder (DESIGN.md D12) riding the busy round. The
// recorder is pull-based like the oracle: JobRunner samples cumulative
// engine counters after step_round, so arg 0 (no recorder) must match
// BM_OracleRound/0 — the unarmed engine has no telemetry code on the hot
// path at all. Arg > 0 is the sampling stride; stride 1 differentiates
// the cursor every round (the worst case) and is the overhead the CI
// bench smoke pins.
void BM_ObsRound(benchmark::State& state) {
  auto& eng = quiescent_engine(chs::sim::StepMode::kAll);
  const std::uint64_t stride = static_cast<std::uint64_t>(state.range(0));
  std::optional<chs::obs::SeriesRecorder> rec;
  auto cursor = [&eng] {
    const auto& m = eng.metrics();
    chs::obs::SeriesCursor c;
    c.active = m.nodes_stepped();
    c.actions = m.round_actions();
    c.messages = m.messages();
    c.dropped = m.messages_dropped();
    c.snapshots = m.snapshots_published();
    return c;
  };
  std::uint64_t t = 0;
  if (stride > 0) {
    rec.emplace(stride, /*cap=*/64);
    rec->prime(cursor());
  }
  for (auto _ : state) {
    eng.step_round();
    if (rec) rec->on_round(t, cursor(), /*windows_open=*/0);
    ++t;
  }
  if (rec) {
    state.counters["samples_retained"] =
        static_cast<double>(rec->samples().size());
    state.counters["effective_stride"] =
        static_cast<double>(rec->effective_stride());
  }
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_ObsRound)->Arg(0)->Arg(1)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Checkpoint/restore (DESIGN.md D9) on the busy 10k-host state: the
// serialization load is 10k full HostStates (finger interval maps
// included), snapshots, RNG streams, calendars, and topology. Checkpointing
// is pull-based — there is no hook in step_round, so the checkpoint-off hot
// path is byte-for-byte the PR 2 engine (the CI bench smoke pins
// BM_EngineBusyRound and BM_OracleRound/0 against drift).
void BM_CheckpointWrite(benchmark::State& state) {
  auto& eng = quiescent_engine(chs::sim::StepMode::kAll);
  std::size_t bytes = 0;
  for (auto _ : state) {
    chs::persist::Writer w(chs::persist::BlobKind::kEngine);
    eng.checkpoint(w);
    bytes = w.bytes().size();
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.counters["blob_bytes"] = static_cast<double>(bytes);
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_CheckpointWrite)->Unit(benchmark::kMillisecond);

void BM_RestoreRead(benchmark::State& state) {
  auto& eng = quiescent_engine(chs::sim::StepMode::kAll);
  chs::persist::Writer w(chs::persist::BlobKind::kEngine);
  eng.checkpoint(w);
  const std::vector<std::uint8_t> blob = w.take();
  // Restore target: same recipe, never run (restore overwrites wholesale).
  chs::util::Rng rng(1);
  auto ids = chs::graph::sample_ids(kQuiescentHosts, kQuiescentGuests, rng);
  chs::core::Params p;
  p.n_guests = kQuiescentGuests;
  auto target = chs::core::make_engine(
      chs::core::scaffold_graph(std::move(ids), kQuiescentGuests), p, 1);
  target->metrics().set_trace_recording(false);
  for (auto _ : state) {
    chs::persist::Reader r(blob);
    bool ok = r.expect_header(chs::persist::BlobKind::kEngine).ok;
    ok = ok && target->restore(r).ok;
    if (!ok) state.SkipWithError("restore failed");
    benchmark::DoNotOptimize(target->round());
  }
  state.counters["blob_bytes"] = static_cast<double>(blob.size());
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_RestoreRead)->Unit(benchmark::kMillisecond);

// Incremental checkpoint (DESIGN.md D10) riding the quiescent active-set
// network: each iteration steps one (empty) round and serializes a delta.
// With nothing stepped, the delta is the fixed framing — engine scalars,
// empty calendars, metrics — not the 10k hosts; blob_bytes vs
// BM_CheckpointWrite's is the payoff the D10 design promises (the CI bench
// smoke asserts >= 10x).
void BM_DeltaCheckpointWrite(benchmark::State& state) {
  auto& eng = quiescent_engine(chs::sim::StepMode::kActiveSet);
  const auto base = eng.checkpoint_blob();  // chain head for the deltas
  std::size_t bytes = 0;
  for (auto _ : state) {
    eng.step_round();
    const auto delta = eng.checkpoint_delta_blob();
    bytes = delta.size();
    benchmark::DoNotOptimize(delta.data());
  }
  state.counters["blob_bytes"] = static_cast<double>(bytes);
  state.counters["base_bytes"] = static_cast<double>(base.size());
  state.counters["hosts"] = kQuiescentHosts;
}
BENCHMARK(BM_DeltaCheckpointWrite)->Unit(benchmark::kMicrosecond);

// Scale ladder (ROADMAP: million-host engine): round cost and resident
// bytes per host at 10k / 100k / 1M hosts, quiescent and busy. Args:
// {0 = busy (StepMode::kAll), 1 = quiescent (kActiveSet); hosts}. Rungs
// are grouped by host count because scale_engine keeps only one alive.
// The 1M rungs take minutes to build and GBs of RAM; CI filters them out
// and they are recorded from the committed BENCH_micro.json runs instead.
void BM_EngineScaleRound(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? chs::sim::StepMode::kAll
                                        : chs::sim::StepMode::kActiveSet;
  const std::size_t hosts = static_cast<std::size_t>(state.range(1));
  auto& eng = hosts == kQuiescentHosts ? quiescent_engine(mode)
                                       : scale_engine(hosts, mode);
  const std::uint64_t stepped0 = eng.metrics().nodes_stepped();
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    eng.step_round();
    ++rounds;
  }
  eng.record_live_bytes();
  state.counters["stepped_per_round"] = benchmark::Counter(
      static_cast<double>(eng.metrics().nodes_stepped() - stepped0) /
      static_cast<double>(rounds == 0 ? 1 : rounds));
  state.counters["hosts"] = static_cast<double>(hosts);
  state.counters["bytes_per_host"] =
      static_cast<double>(eng.metrics().bytes_per_host());
}
BENCHMARK(BM_EngineScaleRound)
    ->Args({0, 10000})->Args({1, 10000})
    ->Args({0, 100000})->Args({1, 100000})
    ->Args({0, 1000000})->Args({1, 1000000})
    ->Unit(benchmark::kMillisecond);

// Idle fast-forward: a two-node network where node 0 self-clocks every
// 1000 rounds. With set_idle_fast_forward(true) each step_round() call
// jumps the whole gap; the rounds_per_call counter shows the leverage
// (~1000 rounds of simulated time per call vs exactly 1 without the knob).
struct GapTicker {
  static constexpr bool kUsesActiveSet = true;
  struct Message {
    int x;
  };
  struct NodeState {
    std::uint64_t ticks = 0;
  };
  struct PublicState {
    bool operator==(const PublicState&) const = default;
  };
  void init_node(chs::sim::NodeId, NodeState&, chs::util::Rng&) {}
  void publish(const NodeState&, PublicState&) {}
  void step(chs::sim::NodeCtx<GapTicker>& ctx) {
    ++ctx.state().ticks;
    if (ctx.self() == 0) ctx.request_wakeup(1000);
  }
};

void BM_EngineIdleGap(benchmark::State& state) {
  chs::graph::Graph g({0, 1});
  g.add_edge(0, 1);
  chs::sim::Engine<GapTicker> eng(std::move(g), GapTicker{}, 1);
  eng.metrics().set_trace_recording(false);
  eng.set_idle_fast_forward(state.range(0) != 0);
  const std::uint64_t start_round = eng.round();
  std::uint64_t calls = 0;
  for (auto _ : state) {
    eng.step_round();
    ++calls;
  }
  state.counters["rounds_per_call"] = benchmark::Counter(
      static_cast<double>(eng.round() - start_round) /
      static_cast<double>(calls == 0 ? 1 : calls));
}
BENCHMARK(BM_EngineIdleGap)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Full stabilization from a random tree (active phase): the active set
// still wins while the network is busy, just less dramatically.
void BM_EngineStabilize(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? chs::sim::StepMode::kAll
                                        : chs::sim::StepMode::kActiveSet;
  chs::util::set_log_level(chs::util::LogLevel::kError);
  std::uint64_t rounds = 0, stepped = 0;
  for (auto _ : state) {
    chs::util::Rng rng(3);
    auto ids = chs::graph::sample_ids(64, 256, rng);
    chs::core::Params p;
    p.n_guests = 256;
    auto eng = chs::core::make_engine(chs::graph::make_random_tree(ids, rng), p, 2);
    eng->set_step_mode(mode);
    const auto res = chs::core::run_to_convergence(*eng, 400000);
    rounds += res.rounds;
    stepped += eng->metrics().nodes_stepped();
  }
  state.counters["rounds"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
  state.counters["nodes_stepped"] = benchmark::Counter(
      static_cast<double>(stepped), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EngineStabilize)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Campaign fan-out: a fixed 16-job scenario (converged start + a churn
// burst per job) at jobs=1 vs jobs=hardware threads. The report is
// byte-identical at both settings (DESIGN.md D7); wall clock tracks
// physical cores exactly like BM_EngineBusyRound — expect ~none on a
// 1-vCPU host, near-linear on real multicore.
void BM_CampaignFanout(benchmark::State& state) {
  chs::util::set_log_level(chs::util::LogLevel::kError);
  chs::campaign::Scenario sc;
  sc.name = "bench-fanout";
  sc.n_guests = 64;
  sc.host_counts = {12};
  sc.families = {chs::graph::Family::kRandomTree};
  sc.seed_lo = 1;
  sc.seed_hi = 16;  // 16 jobs
  sc.max_rounds = 100000;
  sc.churn_at(0, 2);
  chs::campaign::RunOptions opts;
  opts.jobs = state.range(0) != 0
                  ? std::max(1u, std::thread::hardware_concurrency())
                  : 1;
  std::size_t converged = 0;
  for (auto _ : state) {
    const auto rep = chs::campaign::run_campaign(sc, opts);
    converged = rep.converged_jobs;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["jobs"] = static_cast<double>(sc.num_jobs());
  // Not "threads": that would collide with google-benchmark's built-in
  // per-run field and emit duplicate JSON keys in BENCH_micro.json.
  state.counters["job_threads"] = static_cast<double>(opts.jobs);
  state.counters["converged"] = static_cast<double>(converged);
}
BENCHMARK(BM_CampaignFanout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FitPower(benchmark::State& state) {
  std::vector<double> xs, ys;
  chs::util::Rng rng(10);
  for (int i = 1; i <= 64; ++i) {
    xs.push_back(i);
    ys.push_back(static_cast<double>(i) * i * (0.9 + 0.2 * rng.next_double()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(chs::util::fit_power(xs, ys));
  }
}
BENCHMARK(BM_FitPower);

}  // namespace

// Custom main (instead of benchmark_main) so the build type lands in the
// JSON context: every committed BENCH_micro.json must come from a Release
// build — debug numbers are 5-20x off and poison any comparison. The CI
// bench smoke asserts context.build_type == "release".
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("build_type", "release");
#else
  benchmark::AddCustomContext("build_type", "debug");
  std::fprintf(stderr,
               "================================================================\n"
               "WARNING: bench_micro built WITHOUT NDEBUG (debug/assert build).\n"
               "Numbers below are meaningless for comparison; rebuild with\n"
               "-DCMAKE_BUILD_TYPE=Release before recording BENCH_micro.json.\n"
               "================================================================\n");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
