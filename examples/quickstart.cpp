// Quickstart: build a self-stabilizing Avatar(Chord) network from an
// arbitrary connected topology and watch it converge.
//
//   $ ./quickstart [n_hosts] [N] [seed]
//
// The library's public API in four steps:
//   1. pick host ids in [0, N) and any weakly-connected initial graph,
//   2. make_engine(initial_graph, Params{N}, seed),
//   3. step rounds (or run_to_convergence) — each host runs the paper's
//      protocol: detect faults, build the Cbt scaffold by cluster merging,
//      then grow Chord fingers over it with PIF waves,
//   4. query the result: legality, degrees, routing.
//
// Two engine knobs matter at scale (both preserve traces bit for bit —
// DESIGN.md D6): eng->set_worker_threads(k) shards the busy-phase round
// work across k threads, and eng->set_idle_fast_forward(true) jumps
// provably empty gap rounds in one step_round() call.
#include <cstdio>
#include <cstdlib>

#include "core/network.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "routing/lookup.hpp"
#include "util/bitops.hpp"

using namespace chs;

int main(int argc, char** argv) {
  const std::size_t n_hosts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;
  const std::uint64_t n_guests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  std::printf("Avatar(Chord) quickstart: %zu hosts, guest space N = %llu\n\n",
              n_hosts, static_cast<unsigned long long>(n_guests));

  // 1. Arbitrary initial configuration: a random tree over random ids.
  util::Rng rng(seed);
  auto ids = graph::sample_ids(n_hosts, n_guests, rng);
  graph::Graph initial = graph::make_random_tree(ids, rng);
  std::printf("initial topology: random tree, %zu edges, diameter %llu, "
              "max degree %zu\n",
              initial.num_edges(),
              static_cast<unsigned long long>(graph::diameter(initial)),
              initial.max_degree());

  // 2. Engine.
  core::Params params;
  params.n_guests = n_guests;
  auto eng = core::make_engine(std::move(initial), params, seed);

  // 3. Run, reporting progress at milestones.
  bool single_cluster_seen = false;
  std::uint64_t single_cluster_round = 0;
  const auto one_cluster = [&] {
    const auto cluster = eng->state(eng->graph().ids()[0]).cluster;
    for (graph::NodeId id : eng->graph().ids()) {
      if (eng->state(id).cluster != cluster) return false;
    }
    return true;
  };
  while (eng->round() < 400000 && !core::is_converged(*eng)) {
    eng->step_round();
    if (!single_cluster_seen && one_cluster()) {
      single_cluster_seen = true;
      single_cluster_round = eng->round();
    }
  }

  if (!core::is_converged(*eng)) {
    std::printf("did NOT converge within the budget\n");
    return 1;
  }

  // 4. Results.
  std::printf("scaffold complete (single Avatar(Cbt) cluster) after %llu "
              "rounds\n",
              static_cast<unsigned long long>(single_cluster_round));
  std::printf("converged to legal Avatar(Chord) after %llu rounds "
              "(paper bound shape: c*log^2 N = c*%u)\n",
              static_cast<unsigned long long>(eng->round()),
              util::ceil_log2(n_guests) * util::ceil_log2(n_guests));
  std::printf("degree expansion during convergence: %.2f (Theorem 3: "
              "O(log^2 N))\n",
              eng->metrics().degree_expansion(eng->graph()));
  std::printf("final host graph: %zu edges, max degree %zu\n",
              eng->graph().num_edges(), eng->graph().max_degree());

  util::Rng route_rng(7);
  const auto stats = routing::lookup_stats(params.target, n_guests,
                                           eng->graph().ids(), 500, route_rng);
  std::printf("greedy lookups: mean %.2f guest hops (%.2f host hops), "
              "max %llu — log N = %u\n",
              stats.mean_guest_hops, stats.mean_host_hops,
              static_cast<unsigned long long>(stats.max_guest_hops),
              util::ceil_log2(n_guests));
  return 0;
}
