// A replicated key-value store on a self-stabilized Chord overlay — the
// end-to-end story the paper motivates: stabilize the topology from an
// arbitrary configuration, hand the routing state to the data plane, and
// serve reads through host failures.
//
//   1. 56 hosts wake up wired as a random tree (say, after a datacenter
//      power event) and self-stabilize to Avatar(Chord(512)).
//   2. A KvCluster snapshots the converged routing tables; every put/get is
//      a real routed message over the built host network.
//   3. We store a small user database with 3-way replication, kill a fifth
//      of the hosts, and read everything back.
#include <cstdio>
#include <string>

#include "dht/kvstore.hpp"
#include "graph/generators.hpp"
#include "util/log.hpp"

using namespace chs;

int main() {
  util::set_log_level(util::LogLevel::kError);
  const std::uint64_t n_guests = 512;
  const std::size_t n_hosts = 56;

  // --- 1. stabilize the overlay from an arbitrary connected topology ---
  util::Rng rng(2024);
  auto ids = graph::sample_ids(n_hosts, n_guests, rng);
  core::Params params;
  params.n_guests = n_guests;
  auto eng = core::make_engine(graph::make_random_tree(ids, rng), params, 1);
  const auto res = core::run_to_convergence(*eng, 400000);
  std::printf("stabilization: converged=%s in %llu rounds (N=%llu, hosts=%zu)\n",
              res.converged ? "yes" : "NO",
              static_cast<unsigned long long>(res.rounds),
              static_cast<unsigned long long>(n_guests), n_hosts);
  if (!res.converged) return 1;

  // --- 2. hand off to the data plane ---
  dht::KvCluster kv(*eng, /*n_replicas=*/3, /*seed=*/7);

  // --- 3. a small user database ---
  const std::size_t n_users = 64;
  for (std::uint64_t uid = 0; uid < n_users; ++uid) {
    const std::uint32_t acks =
        kv.put(uid, "user-" + std::to_string(uid) + "@example.org");
    if (acks < 3) {
      std::printf("  put(%llu) reached only %u/3 replicas\n",
                  static_cast<unsigned long long>(uid), acks);
    }
  }
  std::printf("stored %zu records at 3 replicas each\n", n_users);

  // Kill ~20%% of the hosts (they keep their disks; this is a power loss,
  // not an evacuation).
  std::vector<graph::NodeId> pool(ids.begin(), ids.end());
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.next_below(i)]);
  }
  const std::size_t kills = n_hosts / 5;
  for (std::size_t i = 0; i < kills; ++i) kv.fail_host(pool[i]);
  std::printf("failed %zu/%zu hosts\n", kills, n_hosts);

  std::size_t ok = 0, lost = 0, routing_failures = 0;
  for (std::uint64_t uid = 0; uid < n_users; ++uid) {
    const auto got = kv.get(uid);
    if (got.has_value() && *got == "user-" + std::to_string(uid) + "@example.org") {
      ++ok;
      continue;
    }
    // Distinguish true data loss (every replica's host is down — no protocol
    // can serve this) from a routing failure (a live replica exists but the
    // read could not reach it).
    bool any_live = false;
    for (graph::NodeId h : kv.holders(uid)) {
      if (!kv.is_down(h)) any_live = true;
    }
    ++(any_live ? routing_failures : lost);
  }
  const auto& s = kv.stats();
  std::printf(
      "reads after failure: %zu/%zu ok, %zu lost (all replicas down), "
      "%zu routing failures (retries=%llu, max_hops=%u)\n",
      ok, n_users, lost, routing_failures,
      static_cast<unsigned long long>(s.get_retries), s.max_hops);
  std::printf("data plane totals: %llu puts, %llu gets over %llu rounds\n",
              static_cast<unsigned long long>(s.puts),
              static_cast<unsigned long long>(s.gets),
              static_cast<unsigned long long>(s.rounds));
  // Success: every key that still has a live replica was served.
  return routing_failures == 0 ? 0 : 1;
}
