// Churn recovery: the self-stabilization guarantee in action.
//
// A converged Avatar(Chord) network is repeatedly perturbed — a host
// "leaves and rejoins" (all its edges are torn down except one fresh link,
// its state is wiped), or a batch of random edges is injected — and the
// network re-stabilizes on its own every time. This is exactly the paper's
// promise: a correct topology is restored after *any* transient fault as
// long as the network stays connected.
#include <cstdio>
#include <cstdlib>

#include "core/network.hpp"
#include "graph/generators.hpp"

using namespace chs;
using stabilizer::HostState;

namespace {

/// Host `victim` crashes and rejoins: edges dropped, one fresh link to
/// `anchor`, state wiped to the post-reset singleton.
void churn_host(core::StabEngine& eng, graph::NodeId victim,
                graph::NodeId anchor) {
  const auto nbrs = eng.graph().neighbors(victim);  // copy
  for (graph::NodeId v : nbrs) eng.inject_edge_removal(victim, v);
  eng.inject_edge(victim, anchor);
  HostState& st = eng.state_mut(victim);
  st = HostState{};
  st.id = victim;
  st.phase = core::Phase::kCbt;
  st.cluster = victim;
  st.lo = 0;
  st.hi = eng.protocol().params().n_guests;
  eng.protocol().recompute_fragments(st);
  st.nbrs = eng.graph().neighbors(victim);
  eng.republish();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n_guests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const std::size_t n_hosts = n_guests / 8;
  util::Rng rng(42);
  auto ids = graph::sample_ids(n_hosts, n_guests, rng);

  core::Params params;
  params.n_guests = n_guests;
  auto eng = core::make_engine(core::scaffold_graph(ids, n_guests), params, 3);
  core::install_legal_cbt(*eng, core::Phase::kChord);
  auto res = core::run_to_convergence(*eng, 100000);
  std::printf("initial build: converged=%d after %llu rounds\n", res.converged,
              static_cast<unsigned long long>(res.rounds));
  if (!res.converged) return 1;

  for (int episode = 1; episode <= 3; ++episode) {
    // Pick a victim and an anchor it rejoins through.
    const graph::NodeId victim = ids[rng.next_below(ids.size())];
    graph::NodeId anchor = victim;
    while (anchor == victim) anchor = ids[rng.next_below(ids.size())];
    churn_host(*eng, victim, anchor);

    // Plus some stray edges, as a messy fault would leave behind.
    for (int extra = 0; extra < 3; ++extra) {
      const graph::NodeId a = ids[rng.next_below(ids.size())];
      const graph::NodeId b = ids[rng.next_below(ids.size())];
      if (a != b) eng->inject_edge(a, b);
    }
    eng->republish();

    const std::uint64_t before = eng->round();
    const auto rerun = core::run_to_convergence(*eng, 400000);
    std::printf(
        "episode %d: host %llu churned through %llu (+3 stray edges) — "
        "re-converged=%d after %llu rounds\n",
        episode, static_cast<unsigned long long>(victim),
        static_cast<unsigned long long>(anchor), rerun.converged,
        static_cast<unsigned long long>(eng->round() - before));
    if (!rerun.converged) return 1;
  }
  std::printf("all churn episodes recovered — the network is self-stabilizing\n");
  return 0;
}
