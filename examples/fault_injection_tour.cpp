// Fault-injection tour: what the detector (§4.4, Definition 3) sees.
//
// Starting from a converged, silent Avatar(Chord), each scenario corrupts
// one aspect of a single host's state and reports how many rounds until
// (a) someone detects it (phase falls back to CBT) and (b) the network is
// fully legal and silent again.
#include <cstdio>
#include <cstring>

#include "core/network.hpp"
#include "graph/generators.hpp"

using namespace chs;
using core::StabEngine;
using stabilizer::HostState;
using stabilizer::Phase;

namespace {

bool any_cbt(StabEngine& eng) {
  for (auto id : eng.graph().ids()) {
    if (eng.state(id).phase == Phase::kCbt) return true;
  }
  return false;
}

std::unique_ptr<StabEngine> fresh_converged(std::uint64_t n_guests) {
  util::Rng rng(33);
  auto ids = graph::sample_ids(n_guests / 8, n_guests, rng);
  core::Params p;
  p.n_guests = n_guests;
  auto eng = core::make_engine(core::scaffold_graph(ids, n_guests), p, 5);
  core::install_legal_cbt(*eng, Phase::kChord);
  const auto res = core::run_to_convergence(*eng, 100000);
  CHS_CHECK(res.converged);
  return eng;
}

}  // namespace

int main() {
  const std::uint64_t n_guests = 256;

  struct Scenario {
    const char* name;
    void (*corrupt)(StabEngine&, graph::NodeId);
  };
  const Scenario scenarios[] = {
      {"truncate responsible range",
       [](StabEngine& e, graph::NodeId v) {
         auto& st = e.state_mut(v);
         st.hi = std::max(st.lo + 1, st.hi - 1);
       }},
      {"roll back wave counter",
       [](StabEngine& e, graph::NodeId v) {
         e.state_mut(v).wave_k = 0;
       }},
      {"claim to be cluster root",
       [](StabEngine& e, graph::NodeId v) {
         e.state_mut(v).cluster = v;
       }},
      {"forge phase back to CBT",
       [](StabEngine& e, graph::NodeId v) {
         e.state_mut(v).phase = Phase::kCbt;
       }},
      {"drop a structural edge",
       [](StabEngine& e, graph::NodeId v) {
         const auto& nbrs = e.graph().neighbors(v);
         if (!nbrs.empty()) e.inject_edge_removal(v, nbrs.front());
       }},
  };

  for (const auto& sc : scenarios) {
    auto eng = fresh_converged(n_guests);
    const auto& ids = eng->graph().ids();
    const graph::NodeId victim = ids[ids.size() / 2];
    sc.corrupt(*eng, victim);
    eng->republish();

    const auto [detect_rounds, detected] =
        eng->run_until([](StabEngine& e) { return any_cbt(e); }, 2000);
    const auto recover = core::run_to_convergence(*eng, 400000);
    std::printf("%-30s detected after %3llu rounds, fully recovered after "
                "%llu more (legal + silent: %s)\n",
                sc.name,
                detected ? static_cast<unsigned long long>(detect_rounds) : 999,
                static_cast<unsigned long long>(recover.rounds),
                recover.converged ? "yes" : "NO");
  }
  return 0;
}
