// A visual tour of network scaffolding: watch a line of hosts cluster into
// CBT fragments, merge into the scaffold, and grow Chord fingers.
//
// The program runs one stabilization and writes four Graphviz snapshots
// (render with `neato -n2 -Tsvg file.dot > file.svg`):
//
//   tour_0_initial.{dot,svg}  — the arbitrary initial configuration
//   tour_1_clusters.{dot,svg} — mid-clustering: many CBT-phase clusters
//   tour_2_scaffold.{dot,svg} — the completed Avatar(CBT) scaffold
//   tour_3_chord.{dot,svg}    — the converged Avatar(Chord) target
//
// The .svg files are self-contained (core/svg.hpp) and open directly in a
// browser; the .dot files go through `neato -n2 -Tsvg`.
//
// plus tour_timeline.csv, the per-round series (edges, max degree, cluster
// count, phase histogram) the convergence plots in EXPERIMENTS.md use.
#include <cstdio>
#include <fstream>

#include "core/svg.hpp"
#include "core/trace.hpp"
#include "graph/generators.hpp"
#include "util/log.hpp"

using namespace chs;

namespace {

void write_file(const char* path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("  wrote %s (%zu bytes)\n", path, content.size());
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  const std::uint64_t n_guests = 64;
  const std::size_t n_hosts = 20;

  util::Rng rng(99);
  auto ids = graph::sample_ids(n_hosts, n_guests, rng);
  core::Params params;
  params.n_guests = n_guests;
  auto eng = core::make_engine(graph::make_line(ids), params, 5);

  std::printf("snapshots:\n");
  write_file("tour_0_initial.dot", core::to_dot(*eng));
  write_file("tour_0_initial.svg",
             core::to_svg(*eng, {.title = "initial configuration (line)"}));

  core::TimelineRecorder recorder(/*stride=*/1);

  // Phase 1: run until the cluster count first drops below half the hosts —
  // the "many clusters merging" picture.
  recorder.sample(*eng);
  while (!core::is_converged(*eng)) {
    eng->step_round();
    recorder.sample(*eng);
    if (recorder.samples().back().clusters <= n_hosts / 2) break;
  }
  write_file("tour_1_clusters.dot", core::to_dot(*eng));
  write_file("tour_1_clusters.svg",
             core::to_svg(*eng, {.title = "clusters matching and merging"}));

  // Phase 2: run until the scaffold is complete (or convergence).
  while (!core::is_converged(*eng) && !core::is_scaffold_complete(*eng)) {
    eng->step_round();
    recorder.sample(*eng);
  }
  write_file("tour_2_scaffold.dot", core::to_dot(*eng));
  write_file("tour_2_scaffold.svg",
             core::to_svg(*eng, {.title = "Avatar(CBT) scaffold complete"}));

  // Phase 3: run to full convergence.
  while (!core::is_converged(*eng)) {
    eng->step_round();
    recorder.sample(*eng);
  }
  write_file("tour_3_chord.dot", core::to_dot(*eng));
  write_file("tour_3_chord.svg",
             core::to_svg(*eng, {.title = "Avatar(Chord) converged"}));
  write_file("tour_timeline.csv", recorder.to_csv());

  const auto& last = recorder.samples().back();
  std::printf(
      "converged after %llu rounds: %zu edges, max degree %zu, "
      "%zu/%zu/%zu hosts in CBT/CHORD/DONE\n",
      static_cast<unsigned long long>(last.round), last.edges, last.max_degree,
      last.hosts_cbt, last.hosts_chord, last.hosts_done);
  return 0;
}
