// The network-scaffolding design pattern (§6), applied to a topology of
// your own.
//
// A target only has to say (a) how many MakeFinger waves to run and
// (b) which span edges to keep; the scaffold construction, phase selection,
// detection and pruning are all inherited. Here we define a "sparse ring":
// the base ring plus only every fourth source's long fingers — a cheap
// low-degree variant — and stabilize it from a random initial topology.
#include <cstdio>

#include "core/network.hpp"
#include "graph/generators.hpp"
#include "util/bitops.hpp"

using namespace chs;

int main() {
  const std::uint64_t n_guests = 256;

  topology::TargetSpec sparse_ring{
      .name = "sparse-ring",
      .num_waves = [](std::uint64_t n) { return util::chord_num_fingers(n); },
      .keep =
          [](topology::GuestId i, std::uint32_t k, std::uint64_t) {
            if (k == 0) return true;  // always keep the base ring
            return i % 4 == 0;        // every 4th guest keeps long fingers
          },
      .any_kept_in = {},
  };

  util::Rng rng(21);
  auto ids = graph::sample_ids(48, n_guests, rng);
  auto g = graph::make_random_tree(ids, rng);

  core::Params params;
  params.n_guests = n_guests;
  params.target = sparse_ring;
  auto eng = core::make_engine(std::move(g), params, 4);
  const auto res = core::run_to_convergence(*eng, 400000);

  std::printf("custom target '%s': converged=%d in %llu rounds\n",
              params.target.name.c_str(), res.converged,
              static_cast<unsigned long long>(res.rounds));
  if (!res.converged) return 1;

  const auto chord_edges = avatar::ideal_host_graph(
      topology::chord_target(), eng->graph().ids(), n_guests);
  std::printf("final host edges: %zu (full Chord would need %zu)\n",
              eng->graph().num_edges(), chord_edges.num_edges());
  std::printf("the same scaffold, waves, detector and pruning machinery "
              "built a different legal topology.\n");
  return 0;
}
