// Routing demo: what the finished overlay is *for*.
//
// Builds Avatar(Chord) and walks through greedy lookups step by step,
// printing the finger choices, then degrades the network with random host
// failures and shows lookups detouring (and the bare Cbt tree falling
// apart at the same failure rate).
#include <cstdio>
#include <cstdlib>

#include "core/network.hpp"
#include "graph/generators.hpp"
#include "routing/lookup.hpp"
#include "util/bitops.hpp"

using namespace chs;
using topology::GuestId;

namespace {

void trace_lookup(const topology::TargetSpec& target, std::uint64_t n,
                  GuestId s, GuestId t) {
  std::printf("lookup %llu -> %llu:", static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(t));
  GuestId cur = s;
  int hops = 0;
  while (cur != t && hops < 64) {
    GuestId best = cur;
    std::uint64_t best_dist = (t + n - cur) % n;
    for (GuestId v : routing::guest_neighbors(target, cur, n)) {
      const std::uint64_t d = (t + n - v) % n;
      if (d < best_dist) {
        best_dist = d;
        best = v;
      }
    }
    if (best == cur) break;
    std::printf(" %llu", static_cast<unsigned long long>(best));
    cur = best;
    ++hops;
  }
  std::printf("   (%d hops, log N = %u)\n", hops, util::ceil_log2(n));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n_guests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const auto target = topology::chord_target();

  std::printf("== greedy lookups on Chord(%llu) ==\n",
              static_cast<unsigned long long>(n_guests));
  util::Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    trace_lookup(target, n_guests, rng.next_below(n_guests),
                 rng.next_below(n_guests));
  }

  std::printf("\n== survival under failures ==\n");
  for (double frac : {0.0, 0.15, 0.3}) {
    std::vector<bool> alive(n_guests, true);
    util::Rng kr(9);
    for (std::size_t killed = 0;
         killed < static_cast<std::size_t>(frac * static_cast<double>(n_guests));) {
      const std::size_t v = kr.next_below(n_guests);
      if (alive[v]) {
        alive[v] = false;
        ++killed;
      }
    }
    const auto stats =
        routing::lookup_stats(target, n_guests, {}, 1000, kr, &alive);
    std::printf("%4.0f%% hosts dead: success %.3f, mean hops %.2f\n",
                frac * 100, stats.success_rate, stats.mean_guest_hops);
  }

  std::printf("\n== why the scaffold alone is not enough ==\n");
  std::vector<graph::NodeId> ids;
  for (graph::NodeId i = 0; i < 128; ++i) ids.push_back(i);
  util::Rng rr(13);
  const auto points = routing::robustness_sweep(ids, 128, {0.1, 0.3}, 5, rr);
  for (const auto& pt : points) {
    std::printf("%4.0f%% hosts dead: Chord keeps %.3f of pairs connected, "
                "bare Cbt tree only %.3f\n",
                pt.failed_fraction * 100, pt.chord_reachability,
                pt.cbt_reachability);
  }
  return 0;
}
